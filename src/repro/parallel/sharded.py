"""Sharded parallel ingestion: N LFTA shard engines, one exact HFTA merge.

:class:`ShardedStreamSystem` mirrors the :class:`~repro.gigascope.runtime.
StreamSystem` API but splits the stream into ``shards`` sub-streams with a
pluggable :mod:`partitioner <repro.parallel.partition>`, runs the exact
vectorized engine on every shard — in worker processes via
:class:`concurrent.futures.ProcessPoolExecutor`, or inline with the
deterministic serial executor — and merges the per-shard HFTAs and cost
counters into one :class:`~repro.gigascope.metrics.SimulationResult`.
``RunReport``, ``summary()`` and every cost/answer accessor therefore work
unchanged on the merged report.

The LFTA memory budget is divided across shards: each shard's table for
relation ``R`` gets ``buckets_R // shards`` buckets, so a sharded run
occupies at most the same total LFTA memory as the single-core run it
replaces. A relation with fewer planned buckets than shards cannot be
split without exceeding that budget (every shard table needs at least one
bucket), so the constructor raises
:class:`~repro.errors.ConfigurationError` rather than silently
overshooting — use fewer shards or a larger budget. Exactness does not
depend on the split — only the measured collision/eviction counts do.

Every run records ``partition`` / ``engine`` / ``merge`` phase spans into
a :class:`~repro.observability.MetricsRegistry` (pass your own or read
the system's), and each shard worker returns its own sub-registry, merged
under a ``shard<i>.`` prefix alongside the counter merge.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor

import numpy as np

from repro.core.attributes import AttributeSet
from repro.core.configuration import Configuration
from repro.core.cost_model import CostParameters
from repro.core.optimizer import Plan
from repro.core.queries import QuerySet
from repro.errors import ConfigurationError
from repro.gigascope.engine import simulate
from repro.gigascope.metrics import SimulationResult
from repro.gigascope.records import Dataset
from repro.gigascope.runtime import RunReport, StreamSystem
from repro.observability import MetricsRegistry
from repro.parallel.merge import merge_results
from repro.parallel.partition import HashPartitioner, split_dataset

__all__ = ["ShardedStreamSystem"]

_EXECUTORS = ("process", "serial")

# One shard's work order: everything `simulate` needs plus the shard index,
# picklable as a unit so `ProcessPoolExecutor.map` can ship it to a worker
# in one hop.
_ShardJob = tuple[int, Dataset, Configuration, dict[AttributeSet, int],
                  float, str | None, int]


def _run_shard(job: _ShardJob) -> tuple[int, SimulationResult,
                                        MetricsRegistry]:
    """Worker entry point: one vectorized engine pass over one shard.

    Builds a fresh per-shard registry so the engine span and counters of
    this shard travel back to the parent with the result.
    """
    index, dataset, config, buckets, epoch_seconds, value_column, \
        salt_seed = job
    registry = MetricsRegistry()
    result = simulate(dataset, config, buckets, epoch_seconds, value_column,
                      salt_seed, registry=registry)
    return index, result, registry


def _count_epochs(dataset: Dataset, epoch_seconds: float) -> int:
    """Distinct non-empty epochs of the unsharded stream."""
    if len(dataset) == 0:
        return 0
    ids = np.floor(dataset.timestamps / epoch_seconds).astype(np.int64)
    return int(np.unique(ids).size)


class ShardedStreamSystem:
    """A partitioned, multi-engine LFTA tier with one merging HFTA.

    Accepts the same arguments as :class:`StreamSystem` (minus the engine
    choice — shards always run the vectorized engine) plus:

    shards:
        Number of parallel LFTA shards. ``shards=1`` bypasses
        partitioning and the executor entirely and behaves exactly like a
        single :class:`StreamSystem`. Must not exceed any relation's
        planned bucket count (the per-shard split would exceed the LFTA
        memory budget); :class:`~repro.errors.ConfigurationError`
        otherwise.
    partitioner:
        Record-to-shard assignment strategy (default
        :class:`~repro.parallel.partition.HashPartitioner` on the full
        grouping key). Any partition yields exact answers.
    executor:
        ``"process"`` (one worker process per shard, true multi-core) or
        ``"serial"`` (shards run inline, in shard order — deterministic
        and debugger-friendly; used by the test suite).
    max_workers:
        Process-pool size cap; defaults to ``min(shards, cpu count)``.
        Whatever the value, the pool never opens more workers than there
        are non-empty shard jobs.
    registry:
        A :class:`~repro.observability.MetricsRegistry` to record phase
        spans and counters into; one is created (and exposed as
        ``self.registry``) when omitted.
    """

    def __init__(self, dataset: Dataset, queries: QuerySet,
                 configuration: Configuration,
                 buckets: dict[AttributeSet, int] | None = None,
                 plan: Plan | None = None,
                 params: CostParameters | None = None,
                 value_column: str | None = None,
                 salt_seed: int = 0,
                 where=None,
                 shards: int = 2,
                 partitioner=None,
                 executor: str = "process",
                 max_workers: int | None = None,
                 registry: MetricsRegistry | None = None):
        if int(shards) < 1:
            raise ConfigurationError(f"shards must be >= 1, got {shards}")
        if executor not in _EXECUTORS:
            raise ValueError(f"unknown executor {executor!r} "
                             f"(choose from {_EXECUTORS})")
        # A hidden single-core system performs all validation (plan
        # resolution, bucket completeness, value column, WHERE filter) and
        # serves as the shards=1 fast path.
        self._single = StreamSystem(
            dataset, queries, configuration, buckets, plan=plan,
            params=params, value_column=value_column, salt_seed=salt_seed,
            where=where)
        self.shards = int(shards)
        unsplittable = [rel for rel, b in self._single.buckets.items()
                        if b < self.shards]
        if unsplittable:
            labels = [rel.label() for rel in sorted(
                unsplittable, key=lambda rel: rel.label())]
            raise ConfigurationError(
                f"cannot split relations {labels} across {self.shards} "
                "shards: each shard table needs >= 1 bucket, which would "
                "exceed the planned LFTA memory budget; use fewer shards "
                "or a larger budget")
        self.partitioner = (partitioner if partitioner is not None
                            else HashPartitioner())
        self.executor = executor
        self.max_workers = max_workers
        self.registry = registry if registry is not None else MetricsRegistry()
        self.shard_buckets = {rel: b // self.shards
                              for rel, b in self._single.buckets.items()}
        #: Per-shard ``SimulationResult`` list, populated by :meth:`run`.
        self.shard_results: list[SimulationResult] | None = None
        #: Per-shard ``MetricsRegistry`` list (engine spans and counters
        #: as measured inside each worker), populated by :meth:`run` and
        #: also merged into :attr:`registry` under ``shard<i>.`` prefixes.
        self.shard_registries: list[MetricsRegistry] | None = None

    @classmethod
    def from_plan(cls, dataset: Dataset, queries: QuerySet, plan: Plan,
                  **kwargs) -> "ShardedStreamSystem":
        return cls(dataset, queries, plan.configuration, plan=plan, **kwargs)

    # ------------------------------------------------------------------
    # StreamSystem-compatible accessors
    # ------------------------------------------------------------------
    @property
    def dataset(self) -> Dataset:
        return self._single.dataset

    @property
    def queries(self) -> QuerySet:
        return self._single.queries

    @property
    def configuration(self) -> Configuration:
        return self._single.configuration

    @property
    def buckets(self) -> dict[AttributeSet, int]:
        """The undivided (single-core) bucket counts of the plan."""
        return self._single.buckets

    @property
    def params(self) -> CostParameters:
        return self._single.params

    @property
    def value_column(self) -> str | None:
        return self._single.value_column

    @property
    def last_timings(self) -> dict[str, float] | None:
        """Phase wall seconds of the last :meth:`run`, from the spans.

        Legacy accessor kept for the scaling benchmark's JSON schema;
        new code should read :attr:`registry` spans directly. None until
        :meth:`run` has completed.
        """
        engine = self.registry.last_span("engine")
        if engine is None:
            return None
        partition = self.registry.last_span("partition")
        merge = self.registry.last_span("merge")
        return {
            "partition_seconds": partition.seconds if partition else 0.0,
            "engine_seconds": engine.seconds,
            "merge_seconds": merge.seconds if merge else 0.0,
        }

    def _effective_workers(self, n_jobs: int) -> int:
        """Pool size for ``n_jobs`` non-empty shards.

        A user-supplied ``max_workers`` is honoured but capped at the job
        count; the default is ``min(shards, cpu count)`` (and shard jobs
        never outnumber shards).
        """
        if self.max_workers is not None:
            return max(1, min(self.max_workers, n_jobs))
        return max(1, min(self.shards, n_jobs, os.cpu_count() or 1))

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def run(self) -> RunReport:
        """Partition, stream every shard, merge; one report, exact answers."""
        registry = self.registry
        if self.shards == 1:
            report = self._single.run(registry=registry)
            self.shard_results = [report.result]
            self.shard_registries = None
            return report
        dataset = self._single.dataset
        epoch_seconds = self.queries.epoch_seconds
        with registry.span("partition"):
            shard_ids = self.partitioner.shard_ids(dataset, self.shards)
            jobs: list[_ShardJob] = [
                (index, shard, self._single.configuration,
                 self.shard_buckets, epoch_seconds, self.value_column,
                 self._single.salt_seed)
                for index, shard in enumerate(
                    split_dataset(dataset, shard_ids, self.shards))
                if len(shard)
            ]
            if not jobs:  # empty stream: run one shard for the empty result
                jobs = [(0, dataset, self._single.configuration,
                         self.shard_buckets, epoch_seconds,
                         self.value_column, self._single.salt_seed)]
        with registry.span("engine"):
            if self.executor == "serial" or len(jobs) == 1:
                outcomes = [_run_shard(job) for job in jobs]
            else:
                workers = self._effective_workers(len(jobs))
                with ProcessPoolExecutor(max_workers=workers) as pool:
                    outcomes = list(pool.map(_run_shard, jobs))
        results = [result for _, result, _ in outcomes]
        self.shard_results = results
        self.shard_registries = [reg for _, _, reg in outcomes]
        for index, _, shard_registry in outcomes:
            registry.merge(shard_registry, prefix=f"shard{index}.")
        registry.gauge("shards").set(self.shards)
        with registry.span("merge"):
            merged = merge_results(
                results, self._single.configuration,
                n_records=len(dataset),
                n_epochs=_count_epochs(dataset, epoch_seconds))
        return RunReport(merged, self.params, self.queries)
