"""Sharded parallel ingestion: N LFTA shard engines, one exact HFTA merge.

:class:`ShardedStreamSystem` mirrors the :class:`~repro.gigascope.runtime.
StreamSystem` API but splits the stream into ``shards`` sub-streams with a
pluggable :mod:`partitioner <repro.parallel.partition>`, runs the exact
vectorized engine on every shard — in worker processes via
:class:`concurrent.futures.ProcessPoolExecutor`, inline with the
deterministic serial executor, or through the pipelined shared-memory
executor of :mod:`repro.parallel.pipeline` — and merges the per-shard
HFTAs and cost
counters into one :class:`~repro.gigascope.metrics.SimulationResult`.
``RunReport``, ``summary()`` and every cost/answer accessor therefore work
unchanged on the merged report.

The LFTA memory budget is divided across shards: each shard's table for
relation ``R`` gets ``buckets_R // shards`` buckets, so a sharded run
occupies at most the same total LFTA memory as the single-core run it
replaces. A relation with fewer planned buckets than shards cannot be
split without exceeding that budget (every shard table needs at least one
bucket), so the constructor raises
:class:`~repro.errors.ConfigurationError` rather than silently
overshooting — use fewer shards or a larger budget. Exactness does not
depend on the split — only the measured collision/eviction counts do.

Every run records ``partition`` / ``engine`` / ``merge`` phase spans into
a :class:`~repro.observability.MetricsRegistry` (pass your own or read
the system's), and each shard worker returns its own sub-registry, merged
under a ``shard<i>.`` prefix alongside the counter merge.

Shard workers are allowed to fail. Each shard gets up to
``retry.max_attempts`` tries with exponential backoff and deterministic
jitter; a shard that exhausts its attempts on the process executor is
re-run once on the in-process serial path (graceful degradation) before
the run gives up with a :class:`~repro.errors.ShardExecutionError` that
names the shard and its job — never a raw ``BrokenProcessPool`` or
pickling traceback. Every returned outcome is validated (shard index,
result type, record count, sub-registry type), so a worker that returns
garbage is retried exactly like one that crashed. A seedable
:class:`~repro.resilience.FaultPlan` can be injected to exercise all of
this deterministically on the production code path; the whole recovery
story is summarized in a :class:`~repro.resilience.ResilienceReport`
(``system.resilience_report``, ``report.resilience``, and
``resilience.*`` registry counters). See ``docs/resilience.md``.
"""

from __future__ import annotations

import os
import time
from concurrent.futures import BrokenExecutor, ProcessPoolExecutor
from concurrent.futures import TimeoutError as _FuturesTimeout
from typing import NamedTuple

import numpy as np

from repro.core.attributes import AttributeSet
from repro.core.configuration import Configuration
from repro.core.cost_model import CostParameters
from repro.core.optimizer import Plan
from repro.core.queries import QuerySet
from repro.errors import ConfigurationError, ShardExecutionError
from repro.gigascope.engine import simulate
from repro.gigascope.metrics import SimulationResult
from repro.gigascope.records import Dataset
from repro.gigascope.runtime import RunReport, StreamSystem
from repro.gigascope.strategy import record_strategy_metrics
from repro.observability import MetricsRegistry
from repro.parallel.merge import merge_results
from repro.parallel.partition import (HashPartitioner, shard_balance,
                                      split_dataset)
from repro.resilience.faults import CorruptResultError, FaultPlan, InjectedFault
from repro.resilience.report import ResilienceReport
from repro.resilience.retry import RetryPolicy

__all__ = ["ShardedStreamSystem"]

_EXECUTORS = ("process", "serial", "pipeline")

# Distinct from the builtin on 3.10 (an alias from 3.11 on); a pool wait
# can raise either, so timeouts are always caught as this pair.
_TIMEOUTS = (TimeoutError, _FuturesTimeout)


class _ShardJob(NamedTuple):
    """One shard's work order: everything `simulate` needs plus the shard
    index, picklable as a unit so the executor can ship it to a worker in
    one hop."""

    index: int
    dataset: Dataset
    configuration: Configuration
    buckets: dict[AttributeSet, int]
    epoch_seconds: float
    value_column: str | None
    salt_seed: int
    strategies: dict[AttributeSet, str] | None = None
    native: bool = True


_ShardOutcome = tuple[int, SimulationResult, MetricsRegistry]


def _run_shard(job: _ShardJob, attempt: int = 1,
               fault_plan: FaultPlan | None = None) -> _ShardOutcome:
    """Worker entry point: one vectorized engine pass over one shard.

    Builds a fresh per-shard registry so the engine span and counters of
    this shard travel back to the parent with the result. ``attempt``
    and ``fault_plan`` are the fault-injection hook: when a plan names
    this (shard, attempt), the planned fault fires *here*, inside the
    production path, so crashes cross the real executor boundary and
    corrupted results flow through the real validation."""
    fault = (fault_plan.fault_for(job.index, attempt)
             if fault_plan is not None else None)
    if fault is not None:
        if fault.kind == "crash":
            raise InjectedFault(
                f"injected crash: shard {job.index}, attempt {attempt}")
        if fault.kind == "delay":
            time.sleep(fault.delay_seconds)
    registry = MetricsRegistry()
    result = simulate(job.dataset, job.configuration, job.buckets,
                      job.epoch_seconds, job.value_column, job.salt_seed,
                      registry=registry, strategies=job.strategies,
                      native=job.native)
    if fault is not None and fault.kind == "corrupt":
        # Falsified record count, missing sub-registry: garbage the
        # parent's outcome validation must reject.
        result = SimulationResult(result.counters, result.hfta,
                                  result.n_records + 1, result.n_epochs)
        return job.index, result, None
    return job.index, result, registry


def _validate_outcome(outcome, *, index: int, records: int) -> _ShardOutcome:
    """Reject malformed worker results so they retry like crashes."""
    if not isinstance(outcome, tuple) or len(outcome) != 3:
        raise CorruptResultError(
            f"shard {index} returned a malformed outcome "
            f"({type(outcome).__name__})")
    got_index, result, registry = outcome
    if got_index != index:
        raise CorruptResultError(
            f"shard {index} returned an outcome labelled {got_index}")
    if not isinstance(result, SimulationResult):
        raise CorruptResultError(
            f"shard {index} returned {type(result).__name__} "
            "instead of a SimulationResult")
    if not isinstance(registry, MetricsRegistry):
        raise CorruptResultError(
            f"shard {index} returned an invalid sub-registry "
            f"({type(registry).__name__})")
    if result.n_records != records:
        raise CorruptResultError(
            f"shard {index} reported {result.n_records} records "
            f"for a {records}-record shard")
    return outcome


class _Flight:
    """One shard's in-flight attempt on the process pool: the live future
    plus the submission timestamp its timeout is measured from."""

    __slots__ = ("job", "future", "attempt", "submitted")

    def __init__(self, job: _ShardJob):
        self.job = job
        self.future = None
        self.attempt = 0
        self.submitted = 0.0


def _count_epochs(dataset: Dataset, epoch_seconds: float) -> int:
    """Distinct non-empty epochs of the unsharded stream."""
    if len(dataset) == 0:
        return 0
    ids = np.floor(dataset.timestamps / epoch_seconds).astype(np.int64)
    return int(np.unique(ids).size)


class ShardedStreamSystem:
    """A partitioned, multi-engine LFTA tier with one merging HFTA.

    Accepts the same arguments as :class:`StreamSystem` (minus the engine
    choice — shards always run the vectorized engine) plus:

    shards:
        Number of parallel LFTA shards. ``shards=1`` bypasses
        partitioning and the executor entirely and behaves exactly like a
        single :class:`StreamSystem`. Must not exceed any relation's
        planned bucket count (the per-shard split would exceed the LFTA
        memory budget); :class:`~repro.errors.ConfigurationError`
        otherwise.
    partitioner:
        Record-to-shard assignment strategy (default
        :class:`~repro.parallel.partition.HashPartitioner` on the full
        grouping key). Any partition yields exact answers.
    executor:
        ``"process"`` (one worker process per shard, true multi-core),
        ``"serial"`` (shards run inline, in shard order — deterministic
        and debugger-friendly; used by the test suite), or ``"pipeline"``
        (long-lived per-shard workers fed epoch chunks through
        shared-memory ring buffers, with the HFTA merge overlapped with
        ingest — see :mod:`repro.parallel.pipeline`).
    pipeline_chunk_records / pipeline_ring_slots:
        Pipeline-executor tuning: records per columnar chunk and ring
        slots per shard. The ring bounds each worker's backlog to
        ``slots * chunk_records`` records, which is the backpressure
        window.
    max_workers:
        Process-pool size cap; defaults to ``min(shards, cpu count)``.
        Whatever the value, the pool never opens more workers than there
        are non-empty shard jobs.
    registry:
        A :class:`~repro.observability.MetricsRegistry` to record phase
        spans and counters into; one is created (and exposed as
        ``self.registry``) when omitted.
    retry:
        A :class:`~repro.resilience.RetryPolicy` governing per-shard
        attempts, backoff, timeouts, and the serial fallback; the
        default policy allows 3 attempts per shard.
    fault_plan:
        A :class:`~repro.resilience.FaultPlan` to inject deterministic
        crash/delay/corrupt faults into shard workers (testing and
        failure reproduction; None in production).
    """

    def __init__(self, dataset: Dataset, queries: QuerySet,
                 configuration: Configuration,
                 buckets: dict[AttributeSet, int] | None = None,
                 plan: Plan | None = None,
                 params: CostParameters | None = None,
                 value_column: str | None = None,
                 salt_seed: int = 0,
                 where=None,
                 shards: int = 2,
                 partitioner=None,
                 executor: str = "process",
                 max_workers: int | None = None,
                 registry: MetricsRegistry | None = None,
                 retry: RetryPolicy | None = None,
                 fault_plan: FaultPlan | None = None,
                 pipeline_chunk_records: int = 32768,
                 pipeline_ring_slots: int = 4,
                 strategy=None,
                 native: bool = True):
        if int(shards) < 1:
            raise ConfigurationError(f"shards must be >= 1, got {shards}")
        if executor not in _EXECUTORS:
            raise ValueError(f"unknown executor {executor!r} "
                             f"(choose from {_EXECUTORS})")
        if executor == "pipeline":
            # Fail here, with the platform named, rather than deep in
            # worker setup after rings and workers are half-built.
            from repro.parallel.pipeline import require_fork
            require_fork()
        # A hidden single-core system performs all validation (plan
        # resolution, bucket completeness, value column, WHERE filter) and
        # serves as the shards=1 fast path.
        self._single = StreamSystem(
            dataset, queries, configuration, buckets, plan=plan,
            params=params, value_column=value_column, salt_seed=salt_seed,
            where=where, strategy=strategy, native=native)
        self.shards = int(shards)
        unsplittable = [rel for rel, b in self._single.buckets.items()
                        if b < self.shards]
        if unsplittable:
            labels = [rel.label() for rel in sorted(
                unsplittable, key=lambda rel: rel.label())]
            raise ConfigurationError(
                f"cannot split relations {labels} across {self.shards} "
                "shards: each shard table needs >= 1 bucket, which would "
                "exceed the planned LFTA memory budget; use fewer shards "
                "or a larger budget")
        self.partitioner = (partitioner if partitioner is not None
                            else HashPartitioner())
        self.executor = executor
        self.max_workers = max_workers
        self.registry = registry if registry is not None else MetricsRegistry()
        self.retry_policy = retry if retry is not None else RetryPolicy()
        self.fault_plan = fault_plan
        if int(pipeline_chunk_records) < 1 or int(pipeline_ring_slots) < 1:
            raise ConfigurationError(
                "pipeline_chunk_records and pipeline_ring_slots must be "
                f">= 1, got {pipeline_chunk_records}/{pipeline_ring_slots}")
        self.pipeline_chunk_records = int(pipeline_chunk_records)
        self.pipeline_ring_slots = int(pipeline_ring_slots)
        self.shard_buckets = {rel: b // self.shards
                              for rel, b in self._single.buckets.items()}
        #: How the last run's records actually landed across shards
        #: (strategy, per-shard counts, empty shards, imbalance); set by
        #: :meth:`run` for ``shards > 1`` and surfaced in the manifest.
        self.partition_summary: dict | None = None
        #: The last run's :class:`~repro.resilience.ResilienceReport`
        #: (attempts, faults, fallbacks, overhead); None before
        #: :meth:`run` and on the shards=1 fast path.
        self.resilience_report: ResilienceReport | None = None
        #: Per-shard ``SimulationResult`` list, populated by :meth:`run`.
        self.shard_results: list[SimulationResult] | None = None
        #: Per-shard ``MetricsRegistry`` list (engine spans and counters
        #: as measured inside each worker), populated by :meth:`run` and
        #: also merged into :attr:`registry` under ``shard<i>.`` prefixes.
        self.shard_registries: list[MetricsRegistry] | None = None

    @classmethod
    def from_plan(cls, dataset: Dataset, queries: QuerySet, plan: Plan,
                  **kwargs) -> "ShardedStreamSystem":
        return cls(dataset, queries, plan.configuration, plan=plan, **kwargs)

    # ------------------------------------------------------------------
    # StreamSystem-compatible accessors
    # ------------------------------------------------------------------
    @property
    def dataset(self) -> Dataset:
        return self._single.dataset

    @property
    def queries(self) -> QuerySet:
        return self._single.queries

    @property
    def configuration(self) -> Configuration:
        return self._single.configuration

    @property
    def buckets(self) -> dict[AttributeSet, int]:
        """The undivided (single-core) bucket counts of the plan."""
        return self._single.buckets

    @property
    def params(self) -> CostParameters:
        return self._single.params

    @property
    def strategies(self) -> dict[AttributeSet, str]:
        """Resolved per-relation execution strategies (shared by shards)."""
        return self._single.strategies

    @property
    def value_column(self) -> str | None:
        return self._single.value_column

    @property
    def last_timings(self) -> dict[str, float] | None:
        """Phase wall seconds of the last :meth:`run`, from the spans.

        Legacy accessor kept for the scaling benchmark's JSON schema;
        new code should read :attr:`registry` spans directly. None until
        :meth:`run` has completed.
        """
        engine = self.registry.last_span("engine")
        if engine is None:
            return None
        partition = self.registry.last_span("partition")
        merge = self.registry.last_span("merge")
        return {
            "partition_seconds": partition.seconds if partition else 0.0,
            "engine_seconds": engine.seconds,
            "merge_seconds": merge.seconds if merge else 0.0,
        }

    def _effective_workers(self, n_jobs: int) -> int:
        """Pool size for ``n_jobs`` non-empty shards.

        A user-supplied ``max_workers`` is honoured but capped at the job
        count; the default is ``min(shards, cpu count)`` (and shard jobs
        never outnumber shards).
        """
        if self.max_workers is not None:
            return max(1, min(self.max_workers, n_jobs))
        return max(1, min(self.shards, n_jobs, os.cpu_count() or 1))

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def run(self) -> RunReport:
        """Partition, stream every shard, merge; one report, exact answers."""
        registry = self.registry
        if self.shards == 1:
            report = self._single.run(registry=registry)
            self.shard_results = [report.result]
            self.shard_registries = None
            self.resilience_report = None
            return report
        dataset = self._single.dataset
        epoch_seconds = self.queries.epoch_seconds
        with registry.span("partition"):
            shard_ids = self.partitioner.shard_ids(dataset, self.shards)
            summary = shard_balance(
                shard_ids, self.shards,
                strategy=type(self.partitioner).__name__)
            self.partition_summary = summary
            registry.gauge("partition.empty_shards").set(
                summary["empty_shards"])
            registry.gauge("partition.imbalance").set(summary["imbalance"])
            jobs = (None if self.executor == "pipeline"
                    else self._materialize_jobs(dataset, shard_ids))
        with registry.span("engine"):
            if self.executor == "pipeline":
                outcomes, resilience = self._execute_pipeline(
                    dataset, shard_ids, summary)
            else:
                outcomes, resilience = self._execute_jobs(jobs)
        resilience.record(registry)
        self.resilience_report = resilience
        results = [result for _, result, _ in outcomes]
        self.shard_results = results
        self.shard_registries = [reg for _, _, reg in outcomes]
        for index, _, shard_registry in outcomes:
            registry.merge(shard_registry, prefix=f"shard{index}.")
        registry.gauge("shards").set(self.shards)
        record_strategy_metrics(registry, self._single.strategies)
        with registry.span("merge"):
            merged = merge_results(
                results, self._single.configuration,
                n_records=len(dataset),
                n_epochs=_count_epochs(dataset, epoch_seconds))
        return RunReport(merged, self.params, self.queries,
                         resilience=resilience)

    def _materialize_jobs(self, dataset: Dataset,
                          shard_ids: np.ndarray) -> list[_ShardJob]:
        """Split the stream into per-shard work orders (empty shards are
        skipped; an empty stream yields one job for the empty result)."""
        epoch_seconds = self.queries.epoch_seconds
        jobs: list[_ShardJob] = [
            _ShardJob(index, shard, self._single.configuration,
                      self.shard_buckets, epoch_seconds,
                      self.value_column, self._single.salt_seed,
                      self._single.strategies, self._single.native)
            for index, shard in enumerate(
                split_dataset(dataset, shard_ids, self.shards))
            if len(shard)
        ]
        if not jobs:
            jobs = [_ShardJob(0, dataset, self._single.configuration,
                              self.shard_buckets, epoch_seconds,
                              self.value_column, self._single.salt_seed,
                              self._single.strategies,
                              self._single.native)]
        return jobs

    def _new_resilience(self) -> ResilienceReport:
        resilience = ResilienceReport(
            policy=self.retry_policy.to_dict(),
            fault_plan=(self.fault_plan.to_dict()
                        if self.fault_plan is not None else None))
        # Published before execution so a raising run still leaves its
        # partial attempt history inspectable post-mortem.
        self.resilience_report = resilience
        return resilience

    # ------------------------------------------------------------------
    # Fault-tolerant job execution
    # ------------------------------------------------------------------
    def _execute_pipeline(self, dataset: Dataset, shard_ids: np.ndarray,
                          summary: dict
                          ) -> tuple[list[_ShardOutcome], ResilienceReport]:
        """Run the pipelined shared-memory executor (see
        :mod:`repro.parallel.pipeline`).

        Degenerate shapes — fewer than two non-empty shards, or an empty
        stream — fall back to the in-process serial loop, which is both
        exact and cheaper than spinning up workers for no parallelism.
        """
        from repro.parallel.pipeline import PipelineCoordinator

        resilience = self._new_resilience()
        rng = self.retry_policy.rng()
        live = [s for s, n in enumerate(summary["records"]) if n > 0]
        if len(live) <= 1:
            outcomes = [self._run_job_serial(job, resilience, rng)
                        for job in self._materialize_jobs(dataset, shard_ids)]
            return outcomes, resilience
        coordinator = PipelineCoordinator(self, dataset, shard_ids, live,
                                          resilience, rng)
        return coordinator.run(), resilience

    def _execute_jobs(self, jobs: list[_ShardJob]
                      ) -> tuple[list[_ShardOutcome], ResilienceReport]:
        """Run every job to a validated outcome, retrying per policy.

        Raises :class:`~repro.errors.ShardExecutionError` (naming the
        shard, its size, and the last underlying error) only after the
        policy's attempts — and, on the process executor, the serial
        fallback — are exhausted.
        """
        resilience = self._new_resilience()
        rng = self.retry_policy.rng()
        if self.executor == "serial" or len(jobs) == 1:
            outcomes = [self._run_job_serial(job, resilience, rng)
                        for job in jobs]
        else:
            outcomes = self._run_jobs_process(jobs, resilience, rng)
        return outcomes, resilience

    def _note_attempt(self, resilience: ResilienceReport, index: int,
                      records: int, attempt: int, rng) -> None:
        """Book-keep one attempt: count it, log its planned fault, and
        sleep the backoff (attempt 1 never waits)."""
        row = resilience.outcome(index, records)
        row.attempts = attempt
        fault = (self.fault_plan.fault_for(index, attempt)
                 if self.fault_plan is not None else None)
        if fault is not None:
            row.faults.append(fault.kind)
        wait = self.retry_policy.backoff_seconds(attempt, rng)
        if wait > 0:
            resilience.backoff_seconds += wait
            self.retry_policy.sleep(wait)

    def _note_failure(self, resilience: ResilienceReport, index: int,
                      records: int, exc: Exception, started: float) -> None:
        """Record a failed attempt; ``started`` is the attempt's
        *submission* time, so failure seconds cover its full lifetime."""
        row = resilience.outcome(index, records)
        row.errors.append(f"{type(exc).__name__}: {exc}")
        resilience.failed_attempt_seconds += time.perf_counter() - started

    def _exhausted(self, index: int, records: int,
                   resilience: ResilienceReport,
                   last_exc: Exception) -> ShardExecutionError:
        row = resilience.outcome(index, records)
        detail = row.errors[-1] if row.errors else str(last_exc)
        return ShardExecutionError(
            f"shard {index} ({records} records, "
            f"{len(self.shard_buckets)} relations) failed after "
            f"{row.attempts} attempts"
            + (" including a serial fallback" if row.fallback else "")
            + f"; last error: {detail}",
            shard=index, attempts=row.attempts, records=records)

    def _check_serial_timeout(self, started: float) -> None:
        """Post-hoc timeout for in-process attempts (which cannot be
        interrupted, unlike a worker-pool wait)."""
        timeout = self.retry_policy.timeout_seconds
        elapsed = time.perf_counter() - started
        if timeout is not None and elapsed > timeout:
            raise TimeoutError(
                f"attempt took {elapsed:.3f}s, exceeding the "
                f"{timeout:.3f}s per-attempt timeout")

    def _run_job_serial(self, job: _ShardJob, resilience: ResilienceReport,
                        rng) -> _ShardOutcome:
        """In-process attempts; the retry loop of the serial executor."""
        row = resilience.outcome(job.index, len(job.dataset))
        last_exc: Exception | None = None
        for attempt in range(1, self.retry_policy.max_attempts + 1):
            self._note_attempt(resilience, job.index, len(job.dataset),
                               attempt, rng)
            started = time.perf_counter()
            try:
                outcome = _validate_outcome(
                    _run_shard(job, attempt, self.fault_plan),
                    index=job.index, records=len(job.dataset))
                self._check_serial_timeout(started)
                row.succeeded = True
                return outcome
            except Exception as exc:
                self._note_failure(resilience, job.index, len(job.dataset),
                                   exc, started)
                last_exc = exc
        raise self._exhausted(job.index, len(job.dataset), resilience,
                              last_exc) from last_exc

    def _run_jobs_process(self, jobs: list[_ShardJob],
                          resilience: ResilienceReport,
                          rng) -> list[_ShardOutcome]:
        """Submit-based process-pool execution with per-shard retries.

        All first attempts are submitted up front (full parallelism);
        failures are retried as they surface. Each attempt's timeout is
        measured from its *submission* timestamp, so shards awaited later
        do not get unbounded timeouts. A broken pool (worker killed hard)
        or a timed-out attempt that is already running is torn down and
        rebuilt, so neither a dying worker nor a zombie attempt can doom
        or delay the surviving shards.
        """
        workers = self._effective_workers(len(jobs))
        pool = [ProcessPoolExecutor(max_workers=workers)]
        flights = {job.index: _Flight(job) for job in jobs}

        def submit(job: _ShardJob, attempt: int) -> None:
            flight = flights[job.index]
            flight.attempt = attempt
            flight.submitted = time.perf_counter()
            flight.future = pool[0].submit(_run_shard, job, attempt,
                                           self.fault_plan)

        try:
            for job in jobs:
                self._note_attempt(resilience, job.index, len(job.dataset),
                                   1, rng)
                submit(job, 1)
            return [self._await_job(job, flights, pool, workers, submit,
                                    resilience, rng)
                    for job in jobs]
        finally:
            pool[0].shutdown(wait=False, cancel_futures=True)

    def _await_job(self, job: _ShardJob, flights, pool, workers: int,
                   submit, resilience: ResilienceReport,
                   rng) -> _ShardOutcome:
        row = resilience.outcome(job.index, len(job.dataset))
        flight = flights[job.index]
        timeout = self.retry_policy.timeout_seconds
        while True:
            try:
                if timeout is None:
                    raw = flight.future.result()
                else:
                    remaining = timeout - (time.perf_counter()
                                           - flight.submitted)
                    raw = flight.future.result(timeout=max(0.0, remaining))
                outcome = _validate_outcome(raw, index=job.index,
                                            records=len(job.dataset))
                row.succeeded = True
                return outcome
            except Exception as exc:
                if isinstance(exc, _TIMEOUTS):
                    exc = TimeoutError(
                        f"attempt exceeded the {timeout:.3f}s per-attempt "
                        "timeout (measured from submission)")
                    self._cancel_attempt(flight, flights, pool, workers,
                                         submit, resilience)
                self._note_failure(resilience, job.index, len(job.dataset),
                                   exc, flight.submitted)
                if isinstance(exc, BrokenExecutor):
                    self._rebuild_pool(flights, pool, workers, submit,
                                       exclude=job.index)
                attempt = flight.attempt + 1
                if attempt > self.retry_policy.max_attempts:
                    return self._fallback_or_raise(job, resilience, rng, exc)
                self._note_attempt(resilience, job.index, len(job.dataset),
                                   attempt, rng)
                submit(job, attempt)

    def _cancel_attempt(self, flight: _Flight, flights, pool, workers: int,
                        submit, resilience: ResilienceReport) -> None:
        """Stop a timed-out attempt before its retry is submitted.

        A pending future cancels cleanly. A *running* one cannot be
        cancelled through the executor API — the zombie would keep
        occupying a pool worker while its retry runs, serializing behind
        it — so the pool is torn down (terminating the worker) and
        rebuilt, and every other shard's unfinished attempt is resubmitted
        on the fresh pool at its same attempt number with a fresh clock.
        """
        resilience.cancelled_attempts += 1
        if flight.future.cancel():
            return
        self._rebuild_pool(flights, pool, workers, submit,
                           exclude=flight.job.index)

    def _rebuild_pool(self, flights, pool, workers: int, submit,
                      exclude: int) -> None:
        """Replace the pool; resubmit innocents' unfinished attempts."""
        victims = [flight for flight in flights.values()
                   if flight.job.index != exclude
                   and flight.future is not None
                   and not flight.future.done()]
        old = pool[0]
        old.shutdown(wait=False, cancel_futures=True)
        for proc in list((getattr(old, "_processes", None) or {}).values()):
            try:
                proc.terminate()
            except Exception:
                pass
        pool[0] = ProcessPoolExecutor(max_workers=workers)
        for flight in victims:
            submit(flight.job, flight.attempt)

    def _fallback_or_raise(self, job: _ShardJob,
                           resilience: ResilienceReport, rng,
                           last_exc: Exception) -> _ShardOutcome:
        """Graceful degradation: one in-process try before giving up."""
        row = resilience.outcome(job.index, len(job.dataset))
        if self.retry_policy.serial_fallback:
            row.fallback = True
            attempt = row.attempts + 1
            self._note_attempt(resilience, job.index, len(job.dataset),
                               attempt, rng)
            started = time.perf_counter()
            try:
                outcome = _validate_outcome(
                    _run_shard(job, attempt, self.fault_plan),
                    index=job.index, records=len(job.dataset))
                self._check_serial_timeout(started)
                row.succeeded = True
                return outcome
            except Exception as exc:
                self._note_failure(resilience, job.index, len(job.dataset),
                                   exc, started)
                last_exc = exc
        raise self._exhausted(job.index, len(job.dataset), resilience,
                              last_exc) from last_exc
