"""Sharded parallel ingestion: N LFTA shard engines, one exact HFTA merge.

:class:`ShardedStreamSystem` mirrors the :class:`~repro.gigascope.runtime.
StreamSystem` API but splits the stream into ``shards`` sub-streams with a
pluggable :mod:`partitioner <repro.parallel.partition>`, runs the exact
vectorized engine on every shard — in worker processes via
:class:`concurrent.futures.ProcessPoolExecutor`, or inline with the
deterministic serial executor — and merges the per-shard HFTAs and cost
counters into one :class:`~repro.gigascope.metrics.SimulationResult`.
``RunReport``, ``summary()`` and every cost/answer accessor therefore work
unchanged on the merged report.

The LFTA memory budget is divided across shards: each shard's table for
relation ``R`` gets ``max(1, buckets_R // shards)`` buckets, so a sharded
run occupies (at most) the same total LFTA memory as the single-core run
it replaces. Exactness does not depend on the split — only the measured
collision/eviction counts do.
"""

from __future__ import annotations

import os
import time
from concurrent.futures import ProcessPoolExecutor

import numpy as np

from repro.core.attributes import AttributeSet
from repro.core.configuration import Configuration
from repro.core.cost_model import CostParameters
from repro.core.optimizer import Plan
from repro.core.queries import QuerySet
from repro.errors import ConfigurationError
from repro.gigascope.engine import simulate
from repro.gigascope.metrics import SimulationResult
from repro.gigascope.records import Dataset
from repro.gigascope.runtime import RunReport, StreamSystem
from repro.parallel.merge import merge_results
from repro.parallel.partition import HashPartitioner, split_dataset

__all__ = ["ShardedStreamSystem"]

_EXECUTORS = ("process", "serial")

# One shard's work order: everything `simulate` needs, picklable as a unit
# so `ProcessPoolExecutor.map` can ship it to a worker in one hop.
_ShardJob = tuple[Dataset, Configuration, dict[AttributeSet, int],
                  float, str | None, int]


def _run_shard(job: _ShardJob) -> SimulationResult:
    """Worker entry point: one vectorized engine pass over one shard."""
    dataset, config, buckets, epoch_seconds, value_column, salt_seed = job
    return simulate(dataset, config, buckets, epoch_seconds, value_column,
                    salt_seed)


def _count_epochs(dataset: Dataset, epoch_seconds: float) -> int:
    """Distinct non-empty epochs of the unsharded stream."""
    if len(dataset) == 0:
        return 0
    ids = np.floor(dataset.timestamps / epoch_seconds).astype(np.int64)
    return int(np.unique(ids).size)


class ShardedStreamSystem:
    """A partitioned, multi-engine LFTA tier with one merging HFTA.

    Accepts the same arguments as :class:`StreamSystem` (minus the engine
    choice — shards always run the vectorized engine) plus:

    shards:
        Number of parallel LFTA shards. ``shards=1`` bypasses
        partitioning and the executor entirely and behaves exactly like a
        single :class:`StreamSystem`.
    partitioner:
        Record-to-shard assignment strategy (default
        :class:`~repro.parallel.partition.HashPartitioner` on the full
        grouping key). Any partition yields exact answers.
    executor:
        ``"process"`` (one worker process per shard, true multi-core) or
        ``"serial"`` (shards run inline, in shard order — deterministic
        and debugger-friendly; used by the test suite).
    max_workers:
        Process-pool size cap; defaults to ``min(shards, cpu count)``.
    """

    def __init__(self, dataset: Dataset, queries: QuerySet,
                 configuration: Configuration,
                 buckets: dict[AttributeSet, int] | None = None,
                 plan: Plan | None = None,
                 params: CostParameters | None = None,
                 value_column: str | None = None,
                 salt_seed: int = 0,
                 where=None,
                 shards: int = 2,
                 partitioner=None,
                 executor: str = "process",
                 max_workers: int | None = None):
        if int(shards) < 1:
            raise ConfigurationError(f"shards must be >= 1, got {shards}")
        if executor not in _EXECUTORS:
            raise ValueError(f"unknown executor {executor!r} "
                             f"(choose from {_EXECUTORS})")
        # A hidden single-core system performs all validation (plan
        # resolution, bucket completeness, value column, WHERE filter) and
        # serves as the shards=1 fast path.
        self._single = StreamSystem(
            dataset, queries, configuration, buckets, plan=plan,
            params=params, value_column=value_column, salt_seed=salt_seed,
            where=where)
        self.shards = int(shards)
        self.partitioner = (partitioner if partitioner is not None
                            else HashPartitioner())
        self.executor = executor
        self.max_workers = max_workers
        self.shard_buckets = {rel: max(1, b // self.shards)
                              for rel, b in self._single.buckets.items()}
        #: Per-shard ``SimulationResult`` list, populated by :meth:`run`.
        self.shard_results: list[SimulationResult] | None = None
        #: Wall seconds of the partition / engine / merge phases of the
        #: last :meth:`run` (the scaling benchmark reads these; with the
        #: serial executor the engine phase equals the summed shard work).
        self.last_timings: dict[str, float] | None = None

    @classmethod
    def from_plan(cls, dataset: Dataset, queries: QuerySet, plan: Plan,
                  **kwargs) -> "ShardedStreamSystem":
        return cls(dataset, queries, plan.configuration, plan=plan, **kwargs)

    # ------------------------------------------------------------------
    # StreamSystem-compatible accessors
    # ------------------------------------------------------------------
    @property
    def dataset(self) -> Dataset:
        return self._single.dataset

    @property
    def queries(self) -> QuerySet:
        return self._single.queries

    @property
    def configuration(self) -> Configuration:
        return self._single.configuration

    @property
    def buckets(self) -> dict[AttributeSet, int]:
        """The undivided (single-core) bucket counts of the plan."""
        return self._single.buckets

    @property
    def params(self) -> CostParameters:
        return self._single.params

    @property
    def value_column(self) -> str | None:
        return self._single.value_column

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def run(self) -> RunReport:
        """Partition, stream every shard, merge; one report, exact answers."""
        if self.shards == 1:
            started = time.perf_counter()
            report = self._single.run()
            self.shard_results = [report.result]
            self.last_timings = {
                "partition_seconds": 0.0,
                "engine_seconds": time.perf_counter() - started,
                "merge_seconds": 0.0,
            }
            return report
        dataset = self._single.dataset
        epoch_seconds = self.queries.epoch_seconds
        started = time.perf_counter()
        shard_ids = self.partitioner.shard_ids(dataset, self.shards)
        jobs: list[_ShardJob] = [
            (shard, self._single.configuration, self.shard_buckets,
             epoch_seconds, self.value_column, self._single.salt_seed)
            for shard in split_dataset(dataset, shard_ids, self.shards)
            if len(shard)
        ]
        if not jobs:  # empty stream: run one shard for the empty result
            jobs = [(dataset, self._single.configuration,
                     self.shard_buckets, epoch_seconds, self.value_column,
                     self._single.salt_seed)]
        partitioned = time.perf_counter()
        if self.executor == "serial" or len(jobs) == 1:
            results = [_run_shard(job) for job in jobs]
        else:
            workers = self.max_workers or min(len(jobs),
                                              os.cpu_count() or 1)
            with ProcessPoolExecutor(max_workers=workers) as pool:
                results = list(pool.map(_run_shard, jobs))
        streamed = time.perf_counter()
        self.shard_results = results
        merged = merge_results(
            results, self._single.configuration,
            n_records=len(dataset),
            n_epochs=_count_epochs(dataset, epoch_seconds))
        self.last_timings = {
            "partition_seconds": partitioned - started,
            "engine_seconds": streamed - partitioned,
            "merge_seconds": time.perf_counter() - streamed,
        }
        return RunReport(merged, self.params, self.queries)
