"""Sharded parallel ingestion: partition the stream, merge exact partials.

The paper's LFTA/HFTA split is shard-friendly by construction — partial
aggregates for count/sum/min/max merge exactly — so the stream can be
partitioned across N independent LFTA shard engines whose outputs one
HFTA-level merge combines into the same per-epoch answers the single-core
:class:`~repro.gigascope.runtime.StreamSystem` produces.

* :mod:`~repro.parallel.partition` — hash / round-robin / key-range
  record-to-shard assignment;
* :mod:`~repro.parallel.sharded` — :class:`ShardedStreamSystem`, the
  multi-core mirror of :class:`StreamSystem`;
* :mod:`~repro.parallel.pipeline` — the pipelined shared-memory executor
  (ring-buffered epoch chunks, backpressure, overlapped merge);
* :mod:`~repro.parallel.merge` — exact merging of per-shard HFTAs and
  cost counters, batch-level or incrementally per epoch.

See ``docs/sharding.md`` for semantics and the memory-split policy.
"""

from repro.parallel.merge import (
    EpochMerger,
    merge_counters,
    merge_hftas,
    merge_results,
)
from repro.parallel.partition import (
    HashPartitioner,
    KeyRangePartitioner,
    RoundRobinPartitioner,
    derive_range_bounds,
    make_partitioner,
    shard_balance,
    split_dataset,
)
from repro.parallel.pipeline import PipelineCoordinator, PipelineWorkerError
from repro.parallel.sharded import ShardedStreamSystem

__all__ = [
    "EpochMerger",
    "HashPartitioner",
    "KeyRangePartitioner",
    "PipelineCoordinator",
    "PipelineWorkerError",
    "RoundRobinPartitioner",
    "ShardedStreamSystem",
    "derive_range_bounds",
    "make_partitioner",
    "merge_counters",
    "merge_hftas",
    "merge_results",
    "shard_balance",
    "split_dataset",
]
