"""Sharded parallel ingestion: partition the stream, merge exact partials.

The paper's LFTA/HFTA split is shard-friendly by construction — partial
aggregates for count/sum/min/max merge exactly — so the stream can be
partitioned across N independent LFTA shard engines whose outputs one
HFTA-level merge combines into the same per-epoch answers the single-core
:class:`~repro.gigascope.runtime.StreamSystem` produces.

* :mod:`~repro.parallel.partition` — hash / round-robin / key-range
  record-to-shard assignment;
* :mod:`~repro.parallel.sharded` — :class:`ShardedStreamSystem`, the
  multi-core mirror of :class:`StreamSystem`;
* :mod:`~repro.parallel.merge` — exact merging of per-shard HFTAs and
  cost counters.

See ``docs/sharding.md`` for semantics and the memory-split policy.
"""

from repro.parallel.merge import merge_counters, merge_hftas, merge_results
from repro.parallel.partition import (
    HashPartitioner,
    KeyRangePartitioner,
    RoundRobinPartitioner,
    make_partitioner,
    split_dataset,
)
from repro.parallel.sharded import ShardedStreamSystem

__all__ = [
    "HashPartitioner",
    "KeyRangePartitioner",
    "RoundRobinPartitioner",
    "ShardedStreamSystem",
    "make_partitioner",
    "merge_counters",
    "merge_hftas",
    "merge_results",
    "split_dataset",
]
