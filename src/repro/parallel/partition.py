"""Pluggable stream partitioners for the sharded ingestion runtime.

A partitioner assigns each record of a :class:`~repro.gigascope.records.Dataset`
to one of ``n_shards`` shard streams. Because LFTA/HFTA partial aggregates
are exactly mergeable (counts and value sums add, minima/maxima combine —
the same property that makes phantoms lossless), *any* record-to-shard
assignment preserves query answers; partitioners differ only in how they
trade balance against per-shard group locality:

* :class:`HashPartitioner` — salted splitmix64 hash of a grouping-key
  projection. Records of one group land on one shard, so each shard's
  tables see a disjoint slice of the group space and cross-shard duplicate
  groups (extra HFTA merge work) are minimized.
* :class:`RoundRobinPartitioner` — record ``i`` goes to shard
  ``i % n_shards``. Perfectly balanced, oblivious to keys; every shard
  sees (a thinned copy of) every group.
* :class:`KeyRangePartitioner` — contiguous value ranges of one attribute,
  with explicit boundaries or data-derived quantiles. Keeps related keys
  together (e.g. subnets) at the price of skew sensitivity.

Each partitioner preserves arrival order within a shard (boolean masking of
time-sorted arrays), so shard streams remain valid time-ordered datasets.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.attributes import AttributeSet
from repro.errors import ConfigurationError, SchemaError
from repro.gigascope.hashing import combine_columns
from repro.gigascope.records import Dataset

__all__ = [
    "HashPartitioner",
    "RoundRobinPartitioner",
    "KeyRangePartitioner",
    "make_partitioner",
    "split_dataset",
    "derive_range_bounds",
    "shard_balance",
]

#: Salt decorrelating shard placement from LFTA bucket placement; a record's
#: shard must not predict its bucket or per-shard collision rates would be
#: biased relative to the single-table model.
_SHARD_SALT = 0x5A2D_51AB


def _check_shards(n_shards: int) -> int:
    n = int(n_shards)
    if n < 1:
        raise ConfigurationError(f"n_shards must be >= 1, got {n_shards}")
    return n


@dataclass(frozen=True)
class HashPartitioner:
    """Shard by a salted hash of a grouping-key projection.

    ``key`` selects the attributes hashed (default: every schema
    attribute, i.e. the finest group identity). Hashing a coarser
    projection — e.g. ``AttributeSet.parse("AB")`` — keeps all records of
    each AB-group on one shard, which also co-locates every relation whose
    attributes include the key.
    """

    key: AttributeSet | None = None
    salt: int = _SHARD_SALT

    def shard_ids(self, dataset: Dataset, n_shards: int) -> np.ndarray:
        n_shards = _check_shards(n_shards)
        attrs = (dataset.schema.all_attributes if self.key is None
                 else dataset.schema.attribute_set(self.key))
        hashes = combine_columns([dataset.columns[a] for a in attrs],
                                 self.salt)
        return (hashes % np.uint64(n_shards)).astype(np.int64)


@dataclass(frozen=True)
class RoundRobinPartitioner:
    """Shard record ``i`` to ``i % n_shards``: balanced, key-oblivious."""

    def shard_ids(self, dataset: Dataset, n_shards: int) -> np.ndarray:
        n_shards = _check_shards(n_shards)
        return np.arange(len(dataset), dtype=np.int64) % n_shards


@dataclass(frozen=True)
class KeyRangePartitioner:
    """Shard by contiguous ranges of one grouping attribute.

    With explicit ``boundaries`` ``(b_1, ..., b_{k-1})``, shard ``i`` takes
    values in ``[b_i, b_{i+1})`` (half-open, ``b_0 = -inf``); the boundary
    count must then be ``n_shards - 1``. Without boundaries, cuts are
    derived from the cumulative histogram of the column's observed values
    (see :func:`derive_range_bounds`), which balances the shards for the
    observed distribution and keeps every shard non-empty whenever the
    column has at least ``n_shards`` distinct values.
    """

    column: str
    boundaries: tuple[float, ...] | None = None

    def shard_ids(self, dataset: Dataset, n_shards: int) -> np.ndarray:
        n_shards = _check_shards(n_shards)
        if self.column not in dataset.columns:
            raise SchemaError(
                f"range-partition column {self.column!r} is not a grouping "
                f"attribute of schema {dataset.schema.attributes}")
        values = dataset.columns[self.column]
        if self.boundaries is not None:
            bounds = np.asarray(self.boundaries, dtype=np.float64)
            if bounds.shape != (n_shards - 1,):
                raise ConfigurationError(
                    f"{n_shards} shards need {n_shards - 1} range "
                    f"boundaries, got {bounds.shape[0]}")
            if np.any(np.diff(bounds) <= 0):
                raise ConfigurationError(
                    "range boundaries must be strictly increasing")
        else:
            if len(dataset) == 0:
                return np.zeros(0, dtype=np.int64)
            bounds = derive_range_bounds(values, n_shards)
            if bounds.size == 0:
                return np.zeros(len(dataset), dtype=np.int64)
        return np.searchsorted(bounds, values, side="right").astype(np.int64)


def derive_range_bounds(values: np.ndarray, n_shards: int) -> np.ndarray:
    """Derive strictly increasing range boundaries from the data itself.

    Plain ``np.quantile`` breaks down on skewed or low-cardinality
    columns: interpolated quantiles repeat (collapsing shards to empty)
    or fall strictly between data values (leaving interior shards with
    no records at all). Instead, walk the cumulative histogram of the
    *unique* values and cut at actual data values nearest each ideal
    ``total * i / k`` split. Every boundary is a distinct observed value
    with at least one value below it, so all ``min(n_shards, |uniq|)``
    shards are guaranteed non-empty; only when cardinality is smaller
    than the shard count do trailing shards stay empty.
    """
    n_shards = _check_shards(n_shards)
    uniq, counts = np.unique(np.asarray(values), return_counts=True)
    k = min(n_shards, uniq.size)
    if k <= 1:
        return np.empty(0, dtype=np.float64)
    cum = np.cumsum(counts)
    total = int(cum[-1])
    bounds = np.empty(k - 1, dtype=np.float64)
    prev = 0
    for i in range(1, k):
        target = total * (i / k)
        cut = int(np.searchsorted(cum, target, side="left")) + 1
        cut = max(cut, prev + 1)
        cut = min(cut, uniq.size - 1 - (k - 1 - i))
        bounds[i - 1] = uniq[cut]
        prev = cut
    return bounds


def shard_balance(shard_ids: np.ndarray, n_shards: int,
                  strategy: str = "") -> dict:
    """Summarize how a record-to-shard assignment actually landed.

    The dict is JSON-ready and rides in the run manifest so skewed or
    collapsed partitions are visible post-hoc instead of silently
    degrading parallelism.
    """
    n_shards = _check_shards(n_shards)
    ids = np.asarray(shard_ids)
    counts = (np.bincount(ids, minlength=n_shards) if ids.size
              else np.zeros(n_shards, dtype=np.int64))
    largest = int(counts.max()) if n_shards else 0
    mean = ids.size / n_shards if n_shards else 0.0
    return {
        "strategy": strategy,
        "shards": n_shards,
        "records": [int(c) for c in counts],
        "empty_shards": int(np.count_nonzero(counts == 0)),
        "largest_shard": largest,
        "imbalance": float(largest / mean) if mean else 1.0,
    }


_REGISTRY = {
    "hash": HashPartitioner,
    "round-robin": RoundRobinPartitioner,
    "roundrobin": RoundRobinPartitioner,
    "rr": RoundRobinPartitioner,
    "range": KeyRangePartitioner,
}


def make_partitioner(name: str, key: str | AttributeSet | None = None,
                     column: str | None = None):
    """Build a partitioner from its CLI name (``hash``/``round-robin``/``range``)."""
    kind = name.strip().lower()
    if kind not in _REGISTRY:
        raise ConfigurationError(
            f"unknown partition strategy {name!r} "
            f"(choose from hash, round-robin, range)")
    cls = _REGISTRY[kind]
    if cls is HashPartitioner:
        attrs = (AttributeSet.parse(key) if isinstance(key, str) else key)
        return HashPartitioner(attrs)
    if cls is KeyRangePartitioner:
        if column is None:
            raise ConfigurationError(
                "range partitioning needs a column (pass column=)")
        return KeyRangePartitioner(column)
    return RoundRobinPartitioner()


def split_dataset(dataset: Dataset, shard_ids: np.ndarray,
                  n_shards: int) -> list[Dataset]:
    """Materialize the shard streams for a record-to-shard assignment.

    ``shard_ids`` must assign every record an id in ``[0, n_shards)``.
    Within each shard, records keep their arrival order, so timestamps
    remain non-decreasing.
    """
    n_shards = _check_shards(n_shards)
    ids = np.asarray(shard_ids)
    if ids.shape != (len(dataset),):
        raise ConfigurationError(
            f"shard assignment length {ids.shape} does not match "
            f"{len(dataset)} records")
    if len(dataset) and (ids.min() < 0 or ids.max() >= n_shards):
        raise ConfigurationError(
            f"shard ids must lie in [0, {n_shards}), got range "
            f"[{ids.min()}, {ids.max()}]")
    shards = []
    for shard in range(n_shards):
        keep = ids == shard
        shards.append(Dataset(
            dataset.schema,
            {name: col[keep] for name, col in dataset.columns.items()},
            dataset.timestamps[keep],
            {name: col[keep] for name, col in dataset.values.items()},
        ))
    return shards
