"""Pipelined shared-memory executor: partitioner → shard workers → merge.

The process executor ships each shard's *whole* sub-stream through pickle
and runs partition → engine → merge as a hard barrier. This module
replaces that with the pipelined design of Gulisano et al. (*Efficient
data streaming multiway aggregation through concurrent algorithmic
designs*): one long-lived worker process per non-empty shard, fed
columnar epoch chunks through a :mod:`multiprocessing.shared_memory` ring
buffer, with a bounded free-slot semaphore providing backpressure and the
HFTA merge of epoch ``k`` overlapped with ingest of epoch ``k+1``.

Exactness is preserved by construction:

* The record-to-shard assignment is computed **once**, globally, before
  any chunking (``RoundRobinPartitioner`` and derived key-range bounds
  depend on the whole stream, so per-chunk assignment would diverge).
* Chunks are cut **at epoch boundaries**: a worker accumulates the chunks
  of one epoch and runs one engine pass over the assembled epoch —
  byte-identical to the pass a whole-shard run would make, because epochs
  are independent in the engine.
* Each worker ships one small HFTA per epoch, in stream order; the parent
  folds them into a per-shard partial with :class:`~repro.parallel.merge.
  EpochMerger` in receipt order, so each ``(relation, epoch)`` batch list
  ends up in the engine's own eviction order — the per-shard HFTA is
  batch-for-batch identical to a serial run of that shard, and the final
  :func:`~repro.parallel.merge.merge_results` is the unchanged exact
  merge.

Faults inject at the ring-buffer boundary (crash before the first read,
delay before ingest, corrupt on the final report), so the chaos matrix
exercises the same recovery ladder as the process executor: per-shard
retries on a fresh worker + ring, then the in-process serial fallback.
A timed-out or dead worker is torn down immediately — it cannot linger
as a zombie — and its accumulated partial is discarded before the retry.

Requires the POSIX ``fork`` start method: workers inherit the shared
memory mapping and the live :class:`~repro.core.configuration.
Configuration` directly, avoiding both per-batch pickling and the
double-registration bug of attaching to named shared memory from a
child's resource tracker (fixed only in 3.13's ``track=False``).
"""

from __future__ import annotations

import multiprocessing as mp
import os
import sys
import time
from multiprocessing import shared_memory
from multiprocessing.connection import wait as _wait_connections
from typing import NamedTuple

import numpy as np

from repro.core.attributes import AttributeSet
from repro.core.configuration import Configuration
from repro.errors import ConfigurationError, ReproError
from repro.gigascope.engine import simulate
from repro.gigascope.hfta import HFTA
from repro.gigascope.metrics import CostCounters, SimulationResult
from repro.gigascope.records import Dataset
from repro.gigascope.strategy import StrategyState
from repro.observability import MetricsRegistry
from repro.parallel.merge import EpochMerger
from repro.parallel.sharded import _ShardJob, _validate_outcome
from repro.resilience.faults import CorruptResultError, InjectedFault

__all__ = ["PipelineCoordinator", "PipelineWorkerError",
           "require_fork"]

#: Poll granularity for backpressure stalls and the drain loop; bounds
#: how stale liveness/timeout checks can be while the parent is blocked.
_POLL_SECONDS = 0.02


class PipelineWorkerError(ReproError):
    """A pipeline worker died, misbehaved, or closed its channel."""


def require_fork() -> None:
    """Raise a typed error when POSIX ``fork`` is unavailable.

    The pipeline executor's shared-memory rings and engine setup are
    fork-inherited, so it cannot run under ``spawn``/``forkserver``-only
    platforms. :class:`~repro.parallel.ShardedStreamSystem` calls this at
    construction time so an unsupported ``executor='pipeline'`` request
    fails immediately with the platform's start method named, not deep
    in worker setup.
    """
    methods = mp.get_all_start_methods()
    if "fork" in methods:
        return
    default = mp.get_start_method(allow_none=True) or \
        (methods[0] if methods else "unknown")
    raise ConfigurationError(
        "the pipeline executor requires the 'fork' multiprocessing start "
        f"method (POSIX), but this platform ({sys.platform}) only offers "
        f"{methods} (default {default!r}); use executor='process' or "
        "'serial' instead")


def _fork_context():
    require_fork()
    return mp.get_context("fork")


class _EngineSetup(NamedTuple):
    """Everything a shard worker's engine passes need, fork-inherited."""

    configuration: Configuration
    buckets: dict[AttributeSet, int]
    epoch_seconds: float
    value_column: str | None
    salt_seed: int
    strategies: dict[AttributeSet, str] | None = None
    native: bool = True


class _ChunkLayout:
    """Fixed columnar slot layout: one int64 lane per grouping attribute
    plus one optional float64 value lane. Every lane is 8 bytes wide, so
    a slot is ``chunk_records * n_columns * 8`` bytes and column ``i``
    always starts at ``i * chunk_records * 8``.

    Per-record timestamps are deliberately **not** shipped: the parent
    cuts chunks at epoch boundaries and announces each epoch's id ahead
    of its chunks (punctuation), and the engine consumes timestamps only
    to find those same boundaries — so the worker synthesizes a constant
    in-epoch timestamp instead, saving a full lane of gather + copy
    bandwidth."""

    def __init__(self, schema, value_column: str | None, chunk_records: int):
        self.schema = schema
        self.attributes = tuple(schema.attributes)
        self.value_column = value_column
        self.chunk_records = int(chunk_records)
        self.dtypes = ([np.int64] * len(self.attributes)
                       + ([np.float64] if value_column else []))
        self.n_columns = len(self.dtypes)
        self.slot_bytes = self.chunk_records * self.n_columns * 8

    def stream_columns(self, dataset: Dataset) -> list[np.ndarray]:
        """The dataset's columns in slot order (attrs, then value)."""
        columns = [dataset.columns[name] for name in self.attributes]
        if self.value_column is not None:
            columns.append(dataset.values[self.value_column])
        return columns

    def dataset(self, merged: list[np.ndarray], epoch_id: int,
                epoch_seconds: float) -> Dataset:
        """Wrap one epoch's assembled column arrays as a Dataset, with a
        synthetic mid-epoch timestamp that floors back to ``epoch_id``
        under any positive ``epoch_seconds``."""
        columns = {name: merged[i]
                   for i, name in enumerate(self.attributes)}
        n = len(merged[0])
        timestamps = np.full(n, (epoch_id + 0.5) * epoch_seconds)
        values = ({self.value_column: merged[-1]}
                  if self.value_column is not None else {})
        return Dataset(self.schema, columns, timestamps, values)


class _ChunkRing:
    """Single-producer single-consumer ring of columnar chunk slots.

    The parent owns the shared-memory block (created and unlinked here);
    workers inherit the mapping via fork. Slot indices advance producer
    side as ``sequence % slots``; the consumer processes chunks FIFO and
    releases each slot after copying it out, so the free-slot semaphore
    alone is enough to keep the producer from overwriting live data.
    """

    def __init__(self, ctx, slots: int, layout: _ChunkLayout):
        self.slots = int(slots)
        self.layout = layout
        self.shm = shared_memory.SharedMemory(
            create=True, size=max(8, self.slots * layout.slot_bytes))
        self.free = ctx.Semaphore(self.slots)
        self._destroyed = False

    def write(self, slot: int, columns: list[np.ndarray]) -> None:
        base = slot * self.layout.slot_bytes
        stride = self.layout.chunk_records * 8
        for i, column in enumerate(columns):
            view = np.frombuffer(self.shm.buf, dtype=self.layout.dtypes[i],
                                 count=len(column), offset=base + i * stride)
            view[:] = column

    def write_take(self, slot: int, columns: list[np.ndarray],
                   sel: np.ndarray) -> None:
        """Gather ``columns[sel]`` straight into the slot — one pass over
        the data instead of a temporary gather followed by a memcpy."""
        base = slot * self.layout.slot_bytes
        stride = self.layout.chunk_records * 8
        for i, column in enumerate(columns):
            view = np.frombuffer(self.shm.buf, dtype=self.layout.dtypes[i],
                                 count=len(sel), offset=base + i * stride)
            if column.dtype == view.dtype:
                np.take(column, sel, out=view)
            else:
                view[:] = column[sel]

    def views(self, slot: int, n: int) -> list[np.ndarray]:
        """Zero-copy views of a slot's columns. The consumer must copy
        the data out before releasing the slot's semaphore — after the
        release the producer is free to overwrite it."""
        base = slot * self.layout.slot_bytes
        stride = self.layout.chunk_records * 8
        return [np.frombuffer(self.shm.buf, dtype=dtype, count=n,
                              offset=base + i * stride)
                for i, dtype in enumerate(self.layout.dtypes)]

    def destroy(self) -> None:
        """Parent-side teardown: drop the mapping and the kernel object."""
        if self._destroyed:
            return
        self._destroyed = True
        try:
            self.shm.close()
        except BufferError:  # a stray view is still alive; leak the map,
            pass             # the unlink below still frees the name
        try:
            self.shm.unlink()
        except FileNotFoundError:
            pass


def _pipeline_worker(shard: int, attempt: int, ring: _ChunkRing,
                     layout: _ChunkLayout, chunks_rx, results_tx,
                     setup: _EngineSetup, fault_plan) -> None:
    """Worker loop: read epoch chunks off the ring, run the engine per
    epoch into accumulated counters, ship each epoch's HFTA immediately.

    Faults fire here, at the ring-buffer boundary, so injected crashes
    cross the real process boundary and corrupted reports flow through
    the parent's real outcome validation.
    """
    try:
        fault = (fault_plan.fault_for(shard, attempt)
                 if fault_plan is not None else None)
        if fault is not None:
            if fault.kind == "crash":
                raise InjectedFault(
                    f"injected crash: shard {shard}, attempt {attempt}")
            if fault.kind == "delay":
                time.sleep(fault.delay_seconds)
        registry = MetricsRegistry()
        counters = CostCounters(setup.configuration)
        # One strategy state for the worker's whole lifetime: a shared
        # table must persist across this shard's epochs exactly as it
        # would in a whole-shard serial run.
        strategy_state = StrategyState()
        epoch_arrays: list[np.ndarray] | None = None
        epoch_id = 0
        fill = 0
        n_records = 0
        n_epochs = 0
        while True:
            message = chunks_rx.recv()
            kind = message[0]
            if kind == "eos":
                break
            if kind == "begin":
                # The epoch's id and total size arrive ahead of its
                # chunks, so each chunk is copied out of the ring straight
                # into its final position — one pass, no temporaries.
                epoch_arrays = [np.empty(int(message[1]), dtype=dtype)
                                for dtype in layout.dtypes]
                epoch_id = int(message[2])
                fill = 0
                continue
            _, slot, n, epoch_end = message
            for dst, src in zip(epoch_arrays, ring.views(slot, n)):
                dst[fill:fill + n] = src
            ring.free.release()
            fill += n
            if not epoch_end:
                continue
            epoch = layout.dataset(epoch_arrays, epoch_id,
                                   setup.epoch_seconds)
            epoch_arrays = None
            epoch_hfta = HFTA()
            simulate(epoch, setup.configuration, setup.buckets,
                     setup.epoch_seconds, setup.value_column,
                     setup.salt_seed, counters=counters, hfta=epoch_hfta,
                     registry=registry, strategies=setup.strategies,
                     strategy_state=strategy_state, native=setup.native)
            n_records += len(epoch)
            n_epochs += 1
            results_tx.send(("epoch", n_epochs, epoch_hfta))
        if fault is not None and fault.kind == "corrupt":
            # Falsified record count, missing sub-registry: garbage the
            # parent's outcome validation must reject.
            results_tx.send(("done", n_records + 1, n_epochs, counters,
                             None))
        else:
            results_tx.send(("done", n_records, n_epochs, counters,
                             registry))
    except BaseException as exc:  # noqa: BLE001 — must cross the pipe
        try:
            results_tx.send(("error", f"{type(exc).__name__}: {exc}"))
        except Exception:
            pass
        os._exit(1)
    # send() has fully written the done message into the pipe, so skip
    # interpreter finalization: a normal exit would run a full GC over
    # the fork-inherited heap, copy-on-writing pages just to free them.
    os._exit(0)


class _Lane:
    """One shard's live attempt: worker process + ring + channels."""

    __slots__ = ("shard", "attempt", "proc", "ring", "chunks_tx",
                 "results_rx", "submitted", "sequence", "feeding", "done",
                 "failed", "error", "torn")

    def __init__(self, shard: int, attempt: int, proc, ring: _ChunkRing,
                 chunks_tx, results_rx):
        self.shard = shard
        self.attempt = attempt
        self.proc = proc
        self.ring = ring
        self.chunks_tx = chunks_tx
        self.results_rx = results_rx
        self.submitted = time.perf_counter()
        self.sequence = 0
        self.feeding = True
        self.done = False
        self.failed = False
        self.error: Exception | None = None
        self.torn = False


class PipelineCoordinator:
    """Drives one pipelined run for a :class:`ShardedStreamSystem`.

    Built fresh per run by ``ShardedStreamSystem._execute_pipeline`` with
    at least two non-empty shards; returns validated shard outcomes in
    ascending shard order (the same order the job-based executors use),
    applying the system's retry policy per shard — fresh worker + ring
    per attempt, serial fallback last.
    """

    def __init__(self, system, dataset: Dataset, shard_ids: np.ndarray,
                 live: list[int], resilience, rng):
        self.system = system
        self.dataset = dataset
        self.shard_ids = np.asarray(shard_ids)
        self.live = list(live)
        self.resilience = resilience
        self.rng = rng
        self.policy = system.retry_policy
        self.records = np.bincount(self.shard_ids, minlength=system.shards)
        self.layout = _ChunkLayout(dataset.schema, system.value_column,
                                   system.pipeline_chunk_records)
        self.slots = system.pipeline_ring_slots
        self.setup = _EngineSetup(
            system._single.configuration, system.shard_buckets,
            system.queries.epoch_seconds, system.value_column,
            system._single.salt_seed, system._single.strategies,
            system._single.native)
        self.ctx = _fork_context()
        self.merger = EpochMerger()
        self.lanes: dict[int, _Lane] = {}
        self.outcomes: dict[int, tuple] = {}
        self.chunks_sent = 0
        self.stalls = 0

    # ------------------------------------------------------------------
    # Run
    # ------------------------------------------------------------------
    def run(self) -> list[tuple]:
        try:
            for shard in self.live:
                self.system._note_attempt(self.resilience, shard,
                                          int(self.records[shard]), 1,
                                          self.rng)
                self._start_lane(shard, 1)
            self._feed_main()
            self._drain()
            self._retry_failed()
        finally:
            for lane in list(self.lanes.values()):
                self._teardown_lane(lane, kill=True)
        self._publish_metrics()
        return [self.outcomes[shard] for shard in self.live]

    # ------------------------------------------------------------------
    # Lanes
    # ------------------------------------------------------------------
    def _start_lane(self, shard: int, attempt: int) -> _Lane:
        ring = _ChunkRing(self.ctx, self.slots, self.layout)
        chunks_rx, chunks_tx = self.ctx.Pipe(duplex=False)
        results_rx, results_tx = self.ctx.Pipe(duplex=False)
        proc = self.ctx.Process(
            target=_pipeline_worker,
            args=(shard, attempt, ring, self.layout, chunks_rx, results_tx,
                  self.setup, self.system.fault_plan),
            name=f"repro-pipeline-shard{shard}", daemon=True)
        proc.start()
        # Close the worker-side handles in the parent so a dead worker
        # shows up as EOF instead of a silent hang.
        chunks_rx.close()
        results_tx.close()
        lane = _Lane(shard, attempt, proc, ring, chunks_tx, results_rx)
        self.lanes[shard] = lane
        return lane

    def _active(self) -> list[_Lane]:
        return [lane for lane in self.lanes.values()
                if not lane.done and not lane.failed]

    def _teardown_lane(self, lane: _Lane, kill: bool) -> None:
        if lane.torn:
            return
        lane.torn = True
        lane.feeding = False
        if kill and lane.proc.is_alive():
            lane.proc.terminate()
        lane.proc.join(timeout=2.0)
        if lane.proc.is_alive():
            lane.proc.kill()
            lane.proc.join(timeout=2.0)
        for channel in (lane.chunks_tx, lane.results_rx):
            try:
                channel.close()
            except OSError:
                pass
        lane.ring.destroy()

    def _fail_lane(self, lane: _Lane, exc: Exception) -> None:
        if lane.done or lane.failed:
            return
        lane.failed = True
        lane.error = exc
        self.system._note_failure(self.resilience, lane.shard,
                                  int(self.records[lane.shard]), exc,
                                  lane.submitted)
        # The shard restarts from scratch; its partial merge is garbage.
        self.merger.discard(lane.shard)
        self._teardown_lane(lane, kill=True)

    def _finish_lane(self, lane: _Lane, message: tuple) -> None:
        _, n_records, n_epochs, counters, registry = message
        records = int(self.records[lane.shard])
        result = SimulationResult(counters, self.merger.take(lane.shard),
                                  n_records, n_epochs)
        try:
            outcome = _validate_outcome((lane.shard, result, registry),
                                        index=lane.shard, records=records)
        except CorruptResultError as exc:
            self._fail_lane(lane, exc)
            return
        lane.done = True
        self.outcomes[lane.shard] = outcome
        self.resilience.outcome(lane.shard, records).succeeded = True
        self._teardown_lane(lane, kill=False)

    # ------------------------------------------------------------------
    # Event handling
    # ------------------------------------------------------------------
    def _tick(self) -> None:
        """Service worker messages, then liveness, then timeouts."""
        for lane in self._active():
            self._service_lane(lane)
        for lane in self._active():
            if not lane.proc.is_alive():
                self._service_lane(lane)  # final messages already queued
                if not lane.done and not lane.failed:
                    self._fail_lane(lane, PipelineWorkerError(
                        f"shard {lane.shard} worker died with exit code "
                        f"{lane.proc.exitcode}"))
        timeout = self.policy.timeout_seconds
        if timeout is None:
            return
        now = time.perf_counter()
        for lane in self._active():
            if now - lane.submitted > timeout:
                self.resilience.cancelled_attempts += 1
                self._fail_lane(lane, TimeoutError(
                    f"attempt exceeded the {timeout:.3f}s per-attempt "
                    "timeout (measured from worker start)"))

    def _service_lane(self, lane: _Lane) -> None:
        while not lane.done and not lane.failed:
            try:
                if not lane.results_rx.poll(0):
                    return
                message = lane.results_rx.recv()
            except (EOFError, OSError):
                self._fail_lane(lane, PipelineWorkerError(
                    f"shard {lane.shard} worker closed its result channel"))
                return
            self._handle_message(lane, message)

    def _handle_message(self, lane: _Lane, message) -> None:
        kind = message[0] if isinstance(message, tuple) and message else None
        if kind == "epoch" and len(message) == 3 \
                and isinstance(message[2], HFTA):
            self.merger.add(lane.shard, message[2])
        elif kind == "done" and len(message) == 5:
            self._finish_lane(lane, message)
        elif kind == "error" and len(message) == 2:
            self._fail_lane(lane, PipelineWorkerError(str(message[1])))
        else:
            self._fail_lane(lane, CorruptResultError(
                f"shard {lane.shard} sent a malformed pipeline message "
                f"({type(message).__name__})"))

    # ------------------------------------------------------------------
    # Feeding
    # ------------------------------------------------------------------
    def _feed_main(self) -> None:
        columns = self.layout.stream_columns(self.dataset)
        epoch_seconds = self.setup.epoch_seconds
        # One full-stream selection per shard, sliced per epoch below by
        # binary search — the per-(epoch, shard) mask scans would rescan
        # the id array live_shards times per epoch.
        selections = {shard: np.flatnonzero(self.shard_ids == shard)
                      for shard in self.live}
        for epoch_id, start, end in self.dataset.epoch_slices(epoch_seconds):
            for shard in self.live:
                lane = self.lanes[shard]
                if lane.failed or lane.done or not lane.feeding:
                    continue
                full = selections[shard]
                lo, hi = np.searchsorted(full, (start, end))
                if hi > lo:
                    self._send_epoch(lane, columns, full[lo:hi], epoch_id)
            self._tick()
        for shard in self.live:
            lane = self.lanes[shard]
            if not lane.failed and not lane.done and lane.feeding:
                self._send_eos(lane)

    def _send_epoch(self, lane: _Lane, columns: list[np.ndarray],
                    sel: np.ndarray, epoch_id: int) -> None:
        """Stream one epoch's records (``columns[sel]``) to one lane,
        chunk by chunk; the chunk carrying the epoch's tail is flagged so
        the worker knows the epoch is complete and can run its engine
        pass. The gather happens inside the shared-memory write, so the
        parent touches each record once."""
        n = len(sel)
        cap = self.layout.chunk_records
        try:
            lane.chunks_tx.send(("begin", n, epoch_id))
        except (BrokenPipeError, OSError):
            self._fail_lane(lane, PipelineWorkerError(
                f"shard {lane.shard} worker pipe closed mid-stream"))
            return
        pos = 0
        while pos < n and not lane.failed and not lane.done:
            take = min(cap, n - pos)
            if not self._acquire_slot(lane):
                return
            slot = lane.sequence % self.slots
            lane.ring.write_take(slot, columns, sel[pos:pos + take])
            try:
                lane.chunks_tx.send(("chunk", slot, take, pos + take == n))
            except (BrokenPipeError, OSError):
                self._fail_lane(lane, PipelineWorkerError(
                    f"shard {lane.shard} worker pipe closed mid-stream"))
                return
            lane.sequence += 1
            self.chunks_sent += 1
            pos += take

    def _acquire_slot(self, lane: _Lane) -> bool:
        """Backpressure: block on a free ring slot, but keep servicing the
        other lanes (overlapped merging) and liveness/timeout checks so a
        dead or slow worker cannot deadlock the feed."""
        while not lane.failed and not lane.done:
            if lane.ring.free.acquire(timeout=_POLL_SECONDS):
                return True
            self.stalls += 1
            self._tick()
        return False

    def _send_eos(self, lane: _Lane) -> None:
        lane.feeding = False
        try:
            lane.chunks_tx.send(("eos",))
        except (BrokenPipeError, OSError):
            self._fail_lane(lane, PipelineWorkerError(
                f"shard {lane.shard} worker pipe closed before eos"))

    def _drain(self) -> None:
        while True:
            active = self._active()
            if not active:
                return
            waitable = [lane.results_rx for lane in active]
            waitable += [lane.proc.sentinel for lane in active]
            _wait_connections(waitable, timeout=_POLL_SECONDS)
            self._tick()

    # ------------------------------------------------------------------
    # Retries
    # ------------------------------------------------------------------
    def _retry_failed(self) -> None:
        for shard in self.live:
            if shard not in self.outcomes:
                self._retry_shard(shard)

    def _retry_shard(self, shard: int) -> None:
        records = int(self.records[shard])
        row = self.resilience.outcome(shard, records)
        lane = self.lanes.get(shard)
        last_exc: Exception = (lane.error if lane is not None
                               and lane.error is not None
                               else PipelineWorkerError(
                                   f"shard {shard} never completed"))
        job = self._shard_job(shard)
        while row.attempts < self.policy.max_attempts:
            attempt = row.attempts + 1
            self.system._note_attempt(self.resilience, shard, records,
                                      attempt, self.rng)
            lane = self._start_lane(shard, attempt)
            self._feed_retry(lane, job)
            while not lane.done and not lane.failed:
                _wait_connections([lane.results_rx, lane.proc.sentinel],
                                  timeout=_POLL_SECONDS)
                self._tick()
            if lane.done:
                return
            last_exc = lane.error or last_exc
        self.outcomes[shard] = self.system._fallback_or_raise(
            job, self.resilience, self.rng, last_exc)

    def _shard_job(self, shard: int) -> _ShardJob:
        keep = self.shard_ids == shard
        dataset = self.dataset
        shard_dataset = Dataset(
            dataset.schema,
            {name: column[keep] for name, column in dataset.columns.items()},
            dataset.timestamps[keep],
            {name: column[keep] for name, column in dataset.values.items()})
        return _ShardJob(shard, shard_dataset, self.setup.configuration,
                         self.setup.buckets, self.setup.epoch_seconds,
                         self.setup.value_column, self.setup.salt_seed,
                         self.setup.strategies, self.setup.native)

    def _feed_retry(self, lane: _Lane, job: _ShardJob) -> None:
        columns = self.layout.stream_columns(job.dataset)
        for epoch_id, start, end in job.dataset.epoch_slices(
                self.setup.epoch_seconds):
            if lane.failed or lane.done:
                return
            self._send_epoch(lane, columns, np.arange(start, end), epoch_id)
            self._tick()
        if not lane.failed and not lane.done:
            self._send_eos(lane)

    # ------------------------------------------------------------------
    # Metrics
    # ------------------------------------------------------------------
    def _publish_metrics(self) -> None:
        registry = self.system.registry
        registry.counter("pipeline.chunks").inc(self.chunks_sent)
        registry.counter("pipeline.backpressure_stalls").inc(self.stalls)
        registry.counter("pipeline.epochs_merged").inc(
            self.merger.epochs_merged)
        registry.histogram("pipeline.merge_seconds").observe(
            self.merger.merge_seconds)
        registry.gauge("pipeline.ring_slots").set(self.slots)
        registry.gauge("pipeline.chunk_records").set(
            self.layout.chunk_records)
