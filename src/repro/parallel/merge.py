"""Exact merge of per-shard partial results into one :class:`SimulationResult`.

The LFTA/HFTA split makes shard merging lossless by construction: every
per-shard HFTA holds *partial* aggregates (count / value-sum / min / max
per group per epoch), and partials merge exactly — counts and sums add,
minima and maxima combine, avg is derived as sum/count at answer time.
Merging N shard HFTAs is therefore the same operation the HFTA already
performs on LFTA eviction batches, applied one level up.

``HFTA.merge_from`` ships each shard's contribution as *rows* (pending
eviction batches, or an already-folded shard's columnar state as one
pseudo-batch per key); the single hash-table fold at answer time then
accumulates every group's float sum in one sequential left-to-right
pass — bit-identical to an unsharded run, with no state-into-state tree
additions. The fold itself runs through the runtime-compiled merge
kernel (:mod:`repro.native.merge`) when available.

Cost counters merge by plain summation: a probe or eviction that happened
on some shard happened in the system, so the merged counters price the
*total* work of the sharded run (which differs from a single-table run of
the same memory budget — see ``docs/sharding.md``).
"""

from __future__ import annotations

import time
from typing import Iterable, Sequence

from repro.core.configuration import Configuration
from repro.errors import ConfigurationError
from repro.gigascope.hfta import HFTA
from repro.gigascope.metrics import CostCounters, SimulationResult

__all__ = ["merge_counters", "merge_hftas", "merge_results", "EpochMerger"]


def merge_counters(parts: Iterable[CostCounters],
                   configuration: Configuration) -> CostCounters:
    """Sum per-relation event counts across shards."""
    merged = CostCounters(configuration)
    for part in parts:
        for rel, counters in part.relations.items():
            if rel not in configuration:
                raise ConfigurationError(
                    f"shard counters mention relation {rel} that the "
                    "merged configuration does not instantiate")
            merged.counters(rel).merge(counters)
    return merged


def merge_hftas(parts: Iterable[HFTA]) -> HFTA:
    """Combine per-shard HFTAs into one (exact partial-aggregate merge)."""
    merged = HFTA()
    for part in parts:
        merged.merge_from(part)
    return merged


class EpochMerger:
    """Fold per-epoch HFTA deliveries into per-shard partials as they land.

    The pipelined executor ships one small HFTA per (shard, epoch) while
    later epochs are still being ingested; this accumulator performs the
    HFTA merge for epoch ``k`` overlapped with ingest of epoch ``k+1``.
    Exactness relies on ordering: each worker emits its epochs in stream
    order, and :meth:`add` merges deliveries in receipt order, so the
    accumulated per-shard HFTA is batch-for-batch identical to the HFTA a
    serial run of that shard would have produced (each ``(relation,
    epoch)`` key appears in exactly one delivery, so list order per key
    is the engine's own eviction order). Deliveries deliberately
    accumulate as pending rows rather than being folded per shard as
    they land: folding each shard early and then merging folded states
    would tree-shape the float additions at the cross-shard merge, while
    the single fold at answer time replays every shipped row in one
    sequential pass — bit-identical to the serial sharded executor.
    """

    def __init__(self) -> None:
        self._shards: dict[int, HFTA] = {}
        self.epochs_merged = 0
        self.merge_seconds = 0.0

    def add(self, shard: int, part: HFTA) -> None:
        """Merge one epoch's partial for ``shard`` (timed)."""
        started = time.perf_counter()
        self._shards.setdefault(shard, HFTA()).merge_from(part)
        self.epochs_merged += 1
        self.merge_seconds += time.perf_counter() - started

    def discard(self, shard: int) -> None:
        """Drop a shard's accumulated partial (failed attempt)."""
        self._shards.pop(shard, None)

    def take(self, shard: int) -> HFTA:
        """Remove and return a shard's accumulated HFTA."""
        return self._shards.pop(shard, None) or HFTA()


def merge_results(parts: Sequence[SimulationResult],
                  configuration: Configuration,
                  n_records: int | None = None,
                  n_epochs: int | None = None) -> SimulationResult:
    """One :class:`SimulationResult` equivalent to the union of the shards.

    ``n_records`` defaults to the shard sum (always correct for a
    partition). ``n_epochs`` cannot be derived by summation — one epoch's
    records usually land on several shards — so it defaults to the number
    of distinct epoch ids the merged HFTA received; pass the stream's own
    distinct-epoch count when available (a shard-empty epoch contributes
    no evictions).
    """
    if not parts:
        raise ConfigurationError("merge_results needs at least one shard")
    counters = merge_counters((p.counters for p in parts), configuration)
    hfta = merge_hftas(p.hfta for p in parts)
    if n_records is None:
        n_records = sum(p.n_records for p in parts)
    if n_epochs is None:
        n_epochs = len(hfta.epochs_seen)
    return SimulationResult(counters, hfta, int(n_records), int(n_epochs))
