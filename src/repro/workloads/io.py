"""Saving and loading datasets.

Generated traces are deterministic per seed, but paper-scale generation
still costs seconds and real deployments have actual captures; this module
round-trips :class:`~repro.gigascope.records.Dataset` through

* **NPZ** (:func:`save_npz` / :func:`load_npz`) — compact binary with the
  schema embedded, lossless;
* **CSV** (:func:`save_csv` / :func:`load_csv`) — interoperable text with
  a header row; the timestamp column is named ``__time``.
"""

from __future__ import annotations

import csv
from pathlib import Path

import numpy as np

from repro.errors import SchemaError
from repro.gigascope.records import Dataset, StreamSchema

__all__ = ["save_npz", "load_npz", "save_csv", "load_csv"]

_TIME_COLUMN = "__time"
_ATTR_PREFIX = "attr:"
_VALUE_PREFIX = "value:"


def save_npz(dataset: Dataset, path: str | Path) -> None:
    """Write a dataset to a compressed ``.npz`` file."""
    arrays: dict[str, np.ndarray] = {_TIME_COLUMN: dataset.timestamps}
    for name, column in dataset.columns.items():
        arrays[_ATTR_PREFIX + name] = column
    for name, column in dataset.values.items():
        arrays[_VALUE_PREFIX + name] = column
    arrays["__attributes"] = np.array(dataset.schema.attributes)
    arrays["__value_columns"] = np.array(dataset.schema.value_columns,
                                         dtype=str)
    np.savez_compressed(Path(path), **arrays)


def load_npz(path: str | Path) -> Dataset:
    """Read a dataset written by :func:`save_npz`."""
    with np.load(Path(path), allow_pickle=False) as archive:
        try:
            attributes = tuple(str(a) for a in archive["__attributes"])
            value_columns = tuple(str(v) for v in archive["__value_columns"])
            timestamps = archive[_TIME_COLUMN]
        except KeyError as exc:
            raise SchemaError(f"not a repro dataset archive: missing {exc}")
        schema = StreamSchema(attributes, value_columns)
        columns = {name: archive[_ATTR_PREFIX + name] for name in attributes}
        values = {name: archive[_VALUE_PREFIX + name]
                  for name in value_columns
                  if _VALUE_PREFIX + name in archive}
    return Dataset(schema, columns, timestamps, values)


def save_csv(dataset: Dataset, path: str | Path) -> None:
    """Write a dataset as CSV (header row; ``__time`` holds timestamps)."""
    attr_names = list(dataset.schema.attributes)
    value_names = [name for name in dataset.schema.value_columns
                   if name in dataset.values]
    with open(Path(path), "w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow([_TIME_COLUMN] + attr_names + value_names)
        time_strings = (repr(float(t)) for t in dataset.timestamps)
        attr_cols = [dataset.columns[name] for name in attr_names]
        value_cols = [dataset.values[name] for name in value_names]
        for i, time_str in enumerate(time_strings):
            row = [time_str]
            row.extend(int(col[i]) for col in attr_cols)
            row.extend(repr(float(col[i])) for col in value_cols)
            writer.writerow(row)


def load_csv(path: str | Path,
             value_columns: tuple[str, ...] = ()) -> Dataset:
    """Read a CSV written by :func:`save_csv` (or hand-made to match).

    Columns listed in ``value_columns`` are loaded as float value columns;
    every other non-time column becomes an integer grouping attribute.
    """
    with open(Path(path), newline="") as handle:
        reader = csv.reader(handle)
        try:
            header = next(reader)
        except StopIteration:
            raise SchemaError(f"empty CSV file: {path}")
        if _TIME_COLUMN not in header:
            raise SchemaError(
                f"CSV needs a {_TIME_COLUMN!r} column; got {header}")
        rows = list(reader)
    index = {name: i for i, name in enumerate(header)}
    missing = [v for v in value_columns if v not in index]
    if missing:
        raise SchemaError(f"value columns {missing} not in CSV header")
    attributes = tuple(name for name in header
                       if name != _TIME_COLUMN and name not in value_columns)
    schema = StreamSchema(attributes, tuple(value_columns))
    timestamps = np.array([float(row[index[_TIME_COLUMN]]) for row in rows])
    columns = {
        name: np.array([int(row[index[name]]) for row in rows],
                       dtype=np.int64)
        for name in attributes
    }
    values = {
        name: np.array([float(row[index[name]]) for row in rows])
        for name in value_columns
    }
    return Dataset(schema, columns, timestamps, values)
