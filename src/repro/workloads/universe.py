"""Group universes: the distinct attribute tuples a workload draws from.

The paper's real trace has 2837 distinct 4-attribute groups, with nested
projections of 552 (1 attribute), 1846 (2), and 2117 (3) groups. The
builder here reproduces such a *prefix chain* of projection counts exactly:
level ``j`` creates ``chain[j]`` distinct ``j``-tuples, each extending a
level-``j-1`` tuple, with every shorter tuple covered. Non-prefix
projections (e.g. ``BD``) then fall out of the construction with plausible
intermediate counts.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.core.attributes import AttributeSet
from repro.errors import WorkloadError
from repro.gigascope.hashing import pack_tuples
from repro.gigascope.records import StreamSchema

__all__ = ["GroupUniverse", "make_group_universe", "PAPER_CHAIN"]

#: The paper's reported projection-count chain for the tcpdump trace.
PAPER_CHAIN = (552, 1846, 2117, 2837)


@dataclass(frozen=True)
class GroupUniverse:
    """A fixed set of distinct attribute tuples.

    ``tuples`` has shape ``(n_groups, n_attributes)`` with columns in schema
    attribute order.
    """

    schema: StreamSchema
    tuples: np.ndarray

    def __post_init__(self) -> None:
        if self.tuples.ndim != 2:
            raise WorkloadError("universe tuples must be 2-dimensional")
        if self.tuples.shape[1] != len(self.schema.attributes):
            raise WorkloadError("universe width must match schema")

    @property
    def n_groups(self) -> int:
        return int(self.tuples.shape[0])

    def projection_count(self, attrs: AttributeSet | str) -> int:
        """Exact distinct count of the universe at a projection."""
        attrs = self.schema.attribute_set(attrs)
        idx = [self.schema.attributes.index(a) for a in attrs]
        codes = pack_tuples([self.tuples[:, i] for i in idx])
        return int(np.unique(codes).size)

    def columns_for(self, group_indices: np.ndarray) -> dict[str, np.ndarray]:
        """Materialize attribute columns for a sequence of group indices."""
        rows = self.tuples[group_indices]
        return {name: rows[:, i].copy()
                for i, name in enumerate(self.schema.attributes)}


def make_group_universe(schema: StreamSchema,
                        chain: Sequence[int] = PAPER_CHAIN,
                        value_pool: int = 65536,
                        seed: int = 0) -> GroupUniverse:
    """Build a universe with an exact prefix chain of projection counts.

    ``chain[j]`` is the required distinct count of the first ``j + 1``
    attributes; it must be non-decreasing, start at least at 1, and each
    level must be at most ``previous * value_pool``.
    """
    k = len(schema.attributes)
    if len(chain) != k:
        raise WorkloadError(
            f"chain length {len(chain)} != {k} schema attributes")
    if any(c < 1 for c in chain) or any(b < a for a, b in zip(chain, chain[1:])):
        raise WorkloadError(f"chain must be non-decreasing and >= 1: {chain}")
    rng = np.random.default_rng(seed)
    # Level 0: chain[0] distinct values for the first attribute.
    current = rng.choice(value_pool * 4, size=chain[0],
                         replace=False).astype(np.int64).reshape(-1, 1)
    for level in range(1, k):
        target = chain[level]
        n_prev = current.shape[0]
        if target > n_prev * value_pool:
            raise WorkloadError(
                f"chain level {level} ({target}) exceeds capacity "
                f"{n_prev * value_pool}")
        # Every existing prefix is extended at least once; the remaining
        # tuples extend random prefixes.
        parents = np.concatenate([
            np.arange(n_prev),
            rng.integers(0, n_prev, size=target - n_prev),
        ])
        extension = np.empty(target, dtype=np.int64)
        order = np.argsort(parents, kind="stable")
        sorted_parents = parents[order]
        boundaries = np.flatnonzero(
            np.diff(sorted_parents, prepend=sorted_parents[0] - 1))
        counts = np.diff(np.append(boundaries, target))
        for start, cnt in zip(boundaries, counts):
            # Distinct extension values per parent avoid duplicate tuples.
            values = rng.choice(value_pool, size=int(cnt), replace=False)
            extension[order[start:start + cnt]] = values
        current = np.column_stack([current[parents], extension])
    return GroupUniverse(schema, current)
