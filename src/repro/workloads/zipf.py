"""Zipf-skewed sampling helpers.

Real traffic group popularity is skewed: a few (source, destination) pairs
carry most flows. The workload generators use a truncated Zipf law over a
finite group universe; exponent 0 recovers the uniform distribution.
"""

from __future__ import annotations

import numpy as np

__all__ = ["zipf_probabilities", "sample_zipf"]


def zipf_probabilities(n: int, exponent: float) -> np.ndarray:
    """Probabilities ``p_i proportional to (i + 1)^-exponent`` for i < n."""
    if n < 1:
        raise ValueError("n must be >= 1")
    if exponent < 0:
        raise ValueError("exponent must be >= 0")
    ranks = np.arange(1, n + 1, dtype=np.float64)
    weights = ranks ** (-exponent)
    return weights / weights.sum()


def sample_zipf(rng: np.random.Generator, n: int, exponent: float,
                size: int) -> np.ndarray:
    """Draw ``size`` indices in ``[0, n)`` with truncated-Zipf popularity.

    Ranks are shuffled so that popularity is not correlated with index
    order (the universe builder orders tuples by construction history).
    """
    probs = zipf_probabilities(n, exponent)
    ranked = rng.choice(n, size=size, p=probs)
    shuffle = rng.permutation(n)
    return shuffle[ranked]
