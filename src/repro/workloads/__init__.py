"""Workload generators and dataset statistics (paper Section 6.1).

* :mod:`~repro.workloads.universe` — group universes with prescribed
  projection counts;
* :mod:`~repro.workloads.synthetic` — uniform random streams;
* :mod:`~repro.workloads.netflow` — clustered flow-structured traces (the
  substitute for the paper's tcpdump capture);
* :mod:`~repro.workloads.datasets` — measuring group counts and flow
  lengths for the optimizer.
"""

from repro.workloads.universe import (
    GroupUniverse,
    PAPER_CHAIN,
    make_group_universe,
)
from repro.workloads.synthetic import paper_synthetic_dataset, uniform_dataset
from repro.workloads.netflow import NetflowTraceGenerator, paper_like_trace
from repro.workloads.datasets import (
    calibrated_flow_length,
    flow_count,
    mean_flow_length,
    measure_statistics,
)
from repro.workloads.zipf import sample_zipf, zipf_probabilities
from repro.workloads.io import load_csv, load_npz, save_csv, save_npz
from repro.workloads.datasets import one_record_per_flow

__all__ = [
    "GroupUniverse",
    "PAPER_CHAIN",
    "make_group_universe",
    "paper_synthetic_dataset",
    "uniform_dataset",
    "NetflowTraceGenerator",
    "paper_like_trace",
    "calibrated_flow_length",
    "flow_count",
    "mean_flow_length",
    "measure_statistics",
    "sample_zipf",
    "zipf_probabilities",
    "load_csv",
    "load_npz",
    "save_csv",
    "save_npz",
    "one_record_per_flow",
]
