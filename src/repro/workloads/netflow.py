"""Netflow-like clustered packet traces.

Substitute for the paper's proprietary tcpdump trace (DESIGN.md Section 5):
a production TCP-header capture of ~860,000 packets over 62 seconds with
2837 distinct 4-attribute groups and heavy flow clusteredness.

The generator emits *flows*: a flow picks a group (Zipf-skewed popularity),
a geometric packet count, a start time and an active duration; its packets
are spread over that window and all flows' packets are merged in time
order. Flow interleaving therefore emerges from temporal overlap, exactly
as in real traffic — packets of one flow stay clustered per hash bucket
because concurrent flows rarely share a bucket, which is the property the
paper's Eq. 15 exploits.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import WorkloadError
from repro.gigascope.records import Dataset, StreamSchema
from repro.workloads.universe import (
    GroupUniverse,
    PAPER_CHAIN,
    make_group_universe,
)
from repro.workloads.zipf import sample_zipf

__all__ = ["NetflowTraceGenerator", "paper_like_trace"]


@dataclass(frozen=True)
class NetflowTraceGenerator:
    """Generates clustered, flow-structured packet streams.

    Parameters
    ----------
    universe:
        The distinct groups flows draw from.
    mean_flow_length:
        Mean packets per flow (geometric). The paper's trace implies
        roughly 860k packets / ~2.9k flows ~ 300.
    mean_flow_seconds:
        Mean active duration of a flow; together with the flow arrival
        rate this sets the expected concurrency (and hence how strongly
        flows interleave).
    zipf_exponent:
        Skew of flow-to-group popularity.
    ensure_coverage:
        Give every universe group at least one flow (when there are enough
        flows) so the trace realizes the universe's projection counts, as
        the paper's trace does (2837 groups actually observed).
    """

    universe: GroupUniverse
    mean_flow_length: float = 300.0
    mean_flow_seconds: float = 2.0
    zipf_exponent: float = 1.0
    ensure_coverage: bool = True

    def __post_init__(self) -> None:
        if self.mean_flow_length < 1:
            raise WorkloadError("mean_flow_length must be >= 1")
        if self.mean_flow_seconds <= 0:
            raise WorkloadError("mean_flow_seconds must be positive")

    def generate(self, n_records: int, duration: float = 62.0,
                 seed: int = 0,
                 value_column: str | None = None,
                 mean_value: float = 512.0) -> Dataset:
        """Generate a trace of exactly ``n_records`` packets."""
        if n_records < 1:
            raise WorkloadError("n_records must be >= 1")
        rng = np.random.default_rng(seed)
        n_flows = max(1, int(round(n_records / self.mean_flow_length)))
        lengths = rng.geometric(1.0 / self.mean_flow_length, size=n_flows)
        # Trim / pad so the packet total is exactly n_records.
        total = int(lengths.sum())
        while total < n_records:
            extra = rng.geometric(1.0 / self.mean_flow_length,
                                  size=max(1, n_flows // 10))
            lengths = np.concatenate([lengths, extra])
            total = int(lengths.sum())
        cumulative = np.cumsum(lengths)
        cut = int(np.searchsorted(cumulative, n_records))
        lengths = lengths[:cut + 1].copy()
        lengths[-1] -= int(cumulative[cut] - n_records)
        if lengths[-1] == 0:
            lengths = lengths[:-1]
        n_flows = lengths.shape[0]

        n_groups = self.universe.n_groups
        if self.zipf_exponent > 0:
            groups = sample_zipf(rng, n_groups, self.zipf_exponent, n_flows)
        else:
            groups = rng.integers(0, n_groups, size=n_flows)
        if self.ensure_coverage and n_flows >= n_groups:
            # First n_groups flows (in shuffled order) cover every group.
            groups[:n_groups] = rng.permutation(n_groups)
            rng.shuffle(groups)
        starts = rng.uniform(0.0, duration, size=n_flows)
        spans = np.minimum(rng.exponential(self.mean_flow_seconds,
                                           size=n_flows),
                           duration - starts)

        # Packet times: each flow's packets are uniform in its active span.
        flow_of_packet = np.repeat(np.arange(n_flows), lengths)
        offsets = rng.random(int(lengths.sum()))
        # Sort offsets within each flow so packets are in order per flow.
        order_within = np.lexsort((offsets, flow_of_packet))
        offsets = offsets[order_within]
        times = starts[flow_of_packet] + offsets * spans[flow_of_packet]

        time_order = np.argsort(times, kind="stable")
        times = times[time_order]
        packet_groups = groups[flow_of_packet][time_order]

        columns = self.universe.columns_for(packet_groups)
        values = {}
        if value_column is not None:
            if value_column not in self.universe.schema.value_columns:
                raise WorkloadError(
                    f"{value_column!r} is not a value column of the schema")
            sigma = 0.5
            raw = rng.lognormal(mean=np.log(mean_value) - sigma ** 2 / 2,
                                sigma=sigma, size=n_records)
            values[value_column] = np.maximum(raw, 40.0)
        return Dataset(self.universe.schema, columns, times, values)


def paper_like_trace(n_records: int = 860_000, duration: float = 62.0,
                     seed: int = 0,
                     schema: StreamSchema | None = None) -> Dataset:
    """A trace calibrated to the paper's reported aggregates.

    ~860k packets / 62 s, 2837 four-attribute groups with the 552/1846/2117
    projection chain, and ~300-packet flows.
    """
    schema = schema or StreamSchema(("A", "B", "C", "D"))
    universe = make_group_universe(schema, PAPER_CHAIN, seed=seed)
    generator = NetflowTraceGenerator(universe)
    return generator.generate(n_records, duration, seed=seed + 1)
