"""Measuring optimizer statistics from datasets.

Bridges the substrate and the optimizer: exact group counts per relation,
and flow lengths for clustered data via two estimators —

* **gap-based segmentation** (:func:`flow_count`): records of one group
  whose inter-arrival gap exceeds a timeout belong to different flows (the
  standard netflow definition, the paper's "derived temporally");
* **probe-table calibration** (:func:`calibrated_flow_length`): run the
  projection through a real hash table and invert Eq. 15 — the paper's
  "maintaining the number of times hash table bucket entries are updated
  before being evicted".
"""

from __future__ import annotations

from typing import Iterable

import numpy as np

from repro.core.attributes import AttributeSet
from repro.core.collision.precise import precise_rate
from repro.core.configuration import Configuration
from repro.core.statistics import RelationStatistics
from repro.gigascope.engine import simulate
from repro.gigascope.hashing import pack_tuples
from repro.gigascope.records import Dataset

__all__ = ["flow_count", "mean_flow_length", "calibrated_flow_length",
           "measure_statistics", "one_record_per_flow"]


def one_record_per_flow(dataset: Dataset, attrs: AttributeSet | str,
                        timeout: float = 1.0) -> Dataset:
    """Collapse every flow to a single record (paper Section 4.2).

    The paper validates its random-data collision model by "grouping all
    packets of a flow into a single record". Flows are identified by
    gap-based segmentation at the given projection (same group, inter-packet
    gap <= timeout); each flow is represented by its first packet, and the
    result is re-sorted into arrival order.
    """
    attrs = dataset.schema.attribute_set(attrs)
    n = len(dataset)
    if n == 0:
        return dataset
    codes = pack_tuples([dataset.columns[a] for a in attrs])
    order = np.lexsort((dataset.timestamps, codes))
    sorted_codes = codes[order]
    sorted_times = dataset.timestamps[order]
    head = np.ones(n, dtype=bool)
    head[1:] = (sorted_codes[1:] != sorted_codes[:-1]) | \
        ((sorted_times[1:] - sorted_times[:-1]) > timeout)
    keep = np.sort(order[head])
    return Dataset(
        dataset.schema,
        {k: v[keep] for k, v in dataset.columns.items()},
        dataset.timestamps[keep],
        {k: v[keep] for k, v in dataset.values.items()},
    )


def flow_count(dataset: Dataset, attrs: AttributeSet | str,
               timeout: float = 1.0) -> int:
    """Number of flows at a projection, by gap-based segmentation."""
    attrs = dataset.schema.attribute_set(attrs)
    n = len(dataset)
    if n == 0:
        return 0
    codes = pack_tuples([dataset.columns[a] for a in attrs])
    order = np.lexsort((dataset.timestamps, codes))
    sorted_codes = codes[order]
    sorted_times = dataset.timestamps[order]
    same_group = sorted_codes[1:] == sorted_codes[:-1]
    within_timeout = (sorted_times[1:] - sorted_times[:-1]) <= timeout
    continuations = int(np.count_nonzero(same_group & within_timeout))
    return n - continuations


def mean_flow_length(dataset: Dataset, attrs: AttributeSet | str,
                     timeout: float = 1.0) -> float:
    """Mean packets per flow at a projection (>= 1)."""
    flows = flow_count(dataset, attrs, timeout)
    if flows == 0:
        return 1.0
    return max(len(dataset) / flows, 1.0)


def calibrated_flow_length(dataset: Dataset, attrs: AttributeSet | str,
                           buckets: int | None = None,
                           salt_seed: int = 0) -> float:
    """Invert Eq. 15 against a probe table's measured collision rate.

    Runs the projection through a single direct-mapped table of ``buckets``
    buckets (default: one per group, i.e. ``g/b = 1``) as one epoch; the
    effective flow length is ``x_random(g, b) / x_measured``, the factor by
    which clusteredness suppresses collisions at this table size.
    """
    attrs = dataset.schema.attribute_set(attrs)
    n = len(dataset)
    if n == 0:
        return 1.0
    g = dataset.group_count(attrs)
    b = int(buckets) if buckets is not None else max(g, 1)
    config = Configuration.flat([attrs])
    horizon = float(dataset.timestamps[-1] - dataset.timestamps[0]) + 1.0
    result = simulate(dataset, config, {attrs: b}, epoch_seconds=horizon,
                      salt_seed=salt_seed)
    counters = result.counters.counters(attrs)
    if counters.evictions_intra == 0:
        return float(n)  # no collisions observed: maximally clustered
    measured = counters.evictions_intra / counters.arrivals_intra
    model = precise_rate(g, b)
    return max(model / measured, 1.0)


def measure_statistics(dataset: Dataset,
                       relations: Iterable[AttributeSet | str],
                       flow_timeout: float | None = None,
                       counters: int = 1) -> RelationStatistics:
    """Exact group counts (and optionally flow lengths) for relations.

    Pass ``flow_timeout`` for clustered traces to record gap-based flow
    lengths; omit it for random data (``l = 1`` everywhere).
    """
    groups: dict[AttributeSet, float] = {}
    flows: dict[AttributeSet, float] = {}
    for rel in relations:
        attrs = dataset.schema.attribute_set(rel)
        groups[attrs] = float(dataset.group_count(attrs))
        if flow_timeout is not None:
            flows[attrs] = mean_flow_length(dataset, attrs, flow_timeout)
    return RelationStatistics(groups, flows, counters=counters)
