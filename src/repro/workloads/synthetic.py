"""Uniform random workloads (paper Section 6.1).

The paper's synthetic datasets are "1,000,000 3 and 4 dimensional tuples
uniformly at random with the same number of groups as those encountered in
real data": every record draws a group uniformly from a fixed universe, so
per-projection group counts match the real trace but the stream has no
clusteredness (``l = 1``).
"""

from __future__ import annotations

import numpy as np

from repro.errors import WorkloadError
from repro.gigascope.records import Dataset, StreamSchema
from repro.workloads.universe import (
    GroupUniverse,
    PAPER_CHAIN,
    make_group_universe,
)
from repro.workloads.zipf import sample_zipf

__all__ = ["uniform_dataset", "paper_synthetic_dataset"]


def uniform_dataset(universe: GroupUniverse, n_records: int,
                    duration: float = 62.0, seed: int = 0,
                    zipf_exponent: float = 0.0,
                    value_column: str | None = None,
                    mean_value: float = 512.0) -> Dataset:
    """Draw records i.i.d. from a group universe.

    ``zipf_exponent=0`` (default) is the paper's uniform case; a positive
    exponent skews group popularity for robustness studies. If
    ``value_column`` names one of the schema's value columns, lognormal
    values with the given mean are attached (e.g. packet lengths for
    ``avg(len)`` queries).
    """
    if n_records < 1:
        raise WorkloadError("n_records must be >= 1")
    rng = np.random.default_rng(seed)
    if zipf_exponent > 0:
        picks = sample_zipf(rng, universe.n_groups, zipf_exponent, n_records)
    else:
        picks = rng.integers(0, universe.n_groups, size=n_records)
    columns = universe.columns_for(picks)
    timestamps = np.sort(rng.uniform(0.0, duration, size=n_records))
    values = {}
    if value_column is not None:
        if value_column not in universe.schema.value_columns:
            raise WorkloadError(
                f"{value_column!r} is not a value column of the schema")
        sigma = 0.5
        raw = rng.lognormal(mean=np.log(mean_value) - sigma ** 2 / 2,
                            sigma=sigma, size=n_records)
        values[value_column] = np.maximum(raw, 40.0)
    return Dataset(universe.schema, columns, timestamps, values)


def paper_synthetic_dataset(n_records: int = 1_000_000,
                            duration: float = 62.0,
                            seed: int = 0) -> Dataset:
    """The paper's 4-dimensional uniform dataset (Section 6.1 defaults)."""
    schema = StreamSchema(("A", "B", "C", "D"))
    universe = make_group_universe(schema, PAPER_CHAIN, seed=seed)
    return uniform_dataset(universe, n_records, duration, seed=seed + 1)
