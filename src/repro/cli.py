"""``repro-plan`` — plan a workload from SQL and a captured trace.

The operator-facing front door, composing the whole library::

    repro-plan --memory 40000 --data trace.npz \\
        "select srcIP, count(*) from packets group by srcIP, time/60" \\
        "select srcIP, dstIP, count(*) from packets group by srcIP, dstIP, time/60"

reads the queries (the paper's GSQL dialect, WHERE supported), measures
statistics from the dataset (``.npz`` or ``.csv`` as written by
:mod:`repro.workloads.io`), runs the optimizer, and prints the plan with
its per-relation EXPLAIN breakdown — optionally executing it
(``--execute``) to report measured costs and the sustainable stream rate.
``--metrics-json PATH`` writes a :class:`~repro.observability.RunManifest`
(plan, counters, per-shard phase spans, git SHA) and ``--trace`` prints
the recorded phase spans; both imply ``--execute``.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from repro.core.allocation import StrategyPlanner
from repro.core.cost_model import CostParameters
from repro.core.explain import explain
from repro.core.feeding_graph import FeedingGraph
from repro.core.optimizer import plan
from repro.core.sql import parse_workload
from repro.errors import ReproError
from repro.gigascope.load import LoadModel
from repro.gigascope.online import LiveStreamSystem
from repro.gigascope.runtime import StreamSystem
from repro.gigascope.strategy import resolve_strategies
from repro.observability import MetricsRegistry, RunManifest
from repro.parallel import ShardedStreamSystem, make_partitioner
from repro.resilience import FaultPlan, RetryPolicy
from repro.workloads.datasets import measure_statistics
from repro.workloads.io import load_csv, load_npz

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-plan",
        description="Plan (and optionally execute) a multi-aggregation "
                    "workload over a captured stream.")
    parser.add_argument("queries", nargs="+",
                        help="aggregation queries in the GSQL dialect")
    parser.add_argument("--data", required=True,
                        help="dataset file (.npz or .csv)")
    parser.add_argument("--memory", type=float, default=40_000,
                        help="LFTA budget in 4-byte units (default 40000)")
    parser.add_argument("--algorithm", default="gcsl",
                        choices=["gcsl", "gcpl", "gs", "epes", "none"])
    parser.add_argument("--phi", type=float, default=1.0,
                        help="phi for --algorithm gs")
    parser.add_argument("--evict-cost", type=float, default=50.0,
                        help="c2/c1 ratio (default 50, the paper's)")
    parser.add_argument("--peak-load", type=float, default=None,
                        help="bound on the end-of-epoch cost E_u")
    parser.add_argument("--flow-timeout", type=float, default=None,
                        help="measure flow lengths with this gap timeout "
                             "(clustered traces)")
    parser.add_argument("--value-columns", default="",
                        help="comma-separated float columns when loading "
                             "CSV")
    parser.add_argument("--execute", action="store_true",
                        help="also stream the dataset through the plan")
    parser.add_argument("--strategy", default=None, metavar="SPEC",
                        help="per-relation aggregation strategy: 'auto' "
                             "(pick hash/sort/shared from the measured "
                             "g/b per relation), a single name applied "
                             "to every leaf relation, or comma-separated "
                             "REL=NAME overrides (e.g. 'AB=sort,CD=shared')")
    parser.add_argument("--shards", type=int, default=1,
                        help="run --execute on N parallel LFTA shards "
                             "(default 1: single-core)")
    parser.add_argument("--partition", default="hash",
                        choices=["hash", "round-robin", "range"],
                        help="record-to-shard strategy for --shards > 1")
    parser.add_argument("--partition-column", default=None,
                        help="attribute for --partition range")
    parser.add_argument("--shard-executor", default="process",
                        choices=["process", "serial", "pipeline"],
                        help="worker processes per shard, inline serial "
                             "execution (deterministic, for debugging), or "
                             "the pipelined shared-memory executor "
                             "(ring-buffered epoch chunks, overlapped "
                             "merge)")
    parser.add_argument("--max-retries", type=int, default=2,
                        help="retries per failing shard before the serial "
                             "fallback kicks in (default 2)")
    parser.add_argument("--fault-plan", default=None, metavar="PATH",
                        help="JSON fault plan to inject into sharded "
                             "execution — either a bare plan or a "
                             "--metrics-json manifest whose resilience "
                             "section embeds one (reproduces a recorded "
                             "failure); requires --shards > 1")
    parser.add_argument("--checkpoint-dir", default=None, metavar="DIR",
                        help="execute incrementally through the live "
                             "runtime, checkpointing after every batch "
                             "and resuming from DIR's snapshot when one "
                             "exists; implies --execute, single-core")
    parser.add_argument("--metrics-json", default=None, metavar="PATH",
                        help="write a RunManifest JSON (plan, counters, "
                             "per-shard phase spans, git SHA) to PATH; "
                             "implies --execute")
    parser.add_argument("--trace", action="store_true",
                        help="print the recorded phase spans after "
                             "execution; implies --execute")
    parser.add_argument("--no-native", action="store_true",
                        help="pin the pure numpy engine path (skip the "
                             "runtime-compiled C ingest kernel); results "
                             "are bit-identical either way")
    return parser


def _load_fault_plan(path_text: str) -> FaultPlan:
    """Read a fault plan from a bare JSON file or a run manifest."""
    path = Path(path_text)
    if not path.exists():
        raise ReproError(f"no such fault-plan file: {path}")
    try:
        data = json.loads(path.read_text())
    except (OSError, json.JSONDecodeError) as exc:
        raise ReproError(f"cannot read fault plan {path}: {exc}") from exc
    if isinstance(data, dict):
        if isinstance(data.get("resilience"), dict):  # a full manifest
            data = data["resilience"]
        if isinstance(data.get("fault_plan"), dict):  # a resilience section
            data = data["fault_plan"]
        if "faults" in data:
            return FaultPlan.from_dict(data)
    raise ReproError(f"{path} contains no fault plan (expected a "
                     "'faults' list, possibly under resilience.fault_plan)")


def _load_dataset(path_text: str, value_columns: tuple[str, ...]):
    path = Path(path_text)
    if not path.exists():
        raise ReproError(f"no such dataset file: {path}")
    if path.suffix == ".npz":
        return load_npz(path)
    if path.suffix == ".csv":
        return load_csv(path, value_columns)
    raise ReproError(f"unsupported dataset format {path.suffix!r} "
                     "(use .npz or .csv)")


def _strategy_spec(text: str | None, the_plan, stats):
    """Turn ``--strategy`` into (spec, auto decisions).

    ``auto`` runs the :class:`StrategyPlanner` over the measured group
    counts and the plan's bucket allocation; any other value is passed
    through as an explicit spec (single name, or ``REL=NAME`` pairs)
    and resolved eagerly so a conflict with the plan — a relation the
    configuration does not instantiate (no ``buckets=`` entry), a
    non-hash interior relation — is rejected here with a
    :class:`~repro.errors.ConfigurationError` naming the relation,
    before any execution starts.
    """
    if text is None:
        return None, None
    text = text.strip()
    if text == "auto":
        planner = StrategyPlanner()
        decisions = planner.choose(the_plan.configuration, stats,
                                   the_plan.allocation.buckets)
        return {d.relation: d.strategy for d in decisions}, decisions
    if "=" not in text:
        spec: str | dict = text
    else:
        spec = {}
        for part in text.split(","):
            part = part.strip()
            if not part or "=" not in part:
                raise ReproError(
                    f"bad --strategy entry {part!r} (expected REL=NAME)")
            rel, _, name = part.partition("=")
            spec[rel.strip()] = name.strip()
    resolve_strategies(the_plan.configuration, spec)
    return spec, None


#: Batches per checkpointed run — one snapshot is written after each.
_CHECKPOINT_BATCHES = 16


def _execute_checkpointed(dataset, queries, the_plan, params, value_column,
                          where, registry, checkpoint_dir,
                          strategy=None, native=True) -> LiveStreamSystem:
    """Stream through the live runtime, snapshotting as we go.

    Resumes from ``checkpoint_dir/live.ckpt`` when one exists: the
    snapshot's ``records_seen`` is the replay offset into the dataset,
    and the restored state already holds the open epoch's buffer — so a
    killed run re-invoked with the same arguments finishes with answers
    byte-identical to an uninterrupted one.
    """
    ckpt = Path(checkpoint_dir) / "live.ckpt"
    if ckpt.exists():
        live = LiveStreamSystem.restore(ckpt, registry=registry)
        print(f"resuming from {ckpt} "
              f"({live.records_seen} records already ingested)")
    else:
        live = LiveStreamSystem(dataset.schema, queries, the_plan,
                                params=params, value_column=value_column,
                                where=where, registry=registry,
                                strategy=strategy, native=native)
    start = live.records_seen
    n = len(dataset)
    step = max(1, (n + _CHECKPOINT_BATCHES - 1) // _CHECKPOINT_BATCHES)
    for pos in range(start, n, step):
        end = min(n, pos + step)
        cols = {a: dataset.columns[a][pos:end]
                for a in dataset.schema.attributes}
        vals = (dataset.values[value_column][pos:end]
                if value_column else None)
        live.push(cols, dataset.timestamps[pos:end], vals)
        live.checkpoint(ckpt)
    live.finish()
    live.checkpoint(ckpt)
    print(f"checkpoint        : {ckpt}")
    return live


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.shards < 1:
        parser.error("--shards must be >= 1")
    if args.partition == "range" and args.partition_column is None:
        parser.error("--partition range requires --partition-column")
    if args.max_retries < 0:
        parser.error("--max-retries must be >= 0")
    if args.fault_plan is not None and args.shards <= 1:
        parser.error("--fault-plan requires --shards > 1")
    if args.checkpoint_dir is not None and args.shards > 1:
        parser.error("--checkpoint-dir runs the single-core live "
                     "runtime; drop --shards")
    try:
        value_columns = tuple(
            v for v in args.value_columns.split(",") if v)
        dataset = _load_dataset(args.data, value_columns)
        queries, where = parse_workload(args.queries)
        graph = FeedingGraph(queries)
        for rel in graph.nodes:
            dataset.schema.attribute_set(rel)
        stats = measure_statistics(dataset, graph.nodes,
                                   flow_timeout=args.flow_timeout,
                                   counters=2 if any(
                                       q.aggregate.needs_value
                                       for q in queries) else 1)
        params = CostParameters(1.0, args.evict_cost)
        the_plan = plan(queries, stats, args.memory, params,
                        algorithm=args.algorithm, phi=args.phi,
                        peak_load_limit=args.peak_load)
        strategy, strategy_decisions = _strategy_spec(
            args.strategy, the_plan, stats)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    print(f"stream: {len(dataset)} records, "
          f"{dataset.duration:.1f}s, {len(queries)} queries, "
          f"{len(graph.phantoms)} candidate phantoms")
    if where is not None:
        print(f"where: {where}")
    print()
    print(explain(the_plan, stats, params).render())
    if strategy is not None:
        resolved = resolve_strategies(the_plan.configuration, strategy)
        print()
        print("strategies:")
        if strategy_decisions is not None:
            for decision in strategy_decisions:
                print(f"  {decision.relation.label():<8} "
                      f"{decision.strategy:<7} {decision.reason}")
        else:
            for rel in sorted(resolved, key=lambda r: r.label()):
                print(f"  {rel.label():<8} {resolved[rel]}")

    if args.execute or args.metrics_json or args.trace or \
            args.checkpoint_dir:
        value_column = None
        for query in queries:
            if query.aggregate.needs_value:
                value_column = query.aggregate.column
        registry = MetricsRegistry()
        system = None
        live = None
        report = None
        try:
            if args.checkpoint_dir is not None:
                live = _execute_checkpointed(
                    dataset, queries, the_plan, params, value_column,
                    where, registry, args.checkpoint_dir,
                    strategy=strategy, native=not args.no_native)
            elif args.shards > 1:
                partitioner = make_partitioner(
                    args.partition, column=args.partition_column)
                fault_plan = (_load_fault_plan(args.fault_plan)
                              if args.fault_plan is not None else None)
                system = ShardedStreamSystem.from_plan(
                    dataset, queries, the_plan, params=params,
                    value_column=value_column, where=where,
                    shards=args.shards, partitioner=partitioner,
                    executor=args.shard_executor, registry=registry,
                    retry=RetryPolicy(max_attempts=args.max_retries + 1),
                    fault_plan=fault_plan, strategy=strategy,
                    native=not args.no_native)
                report = system.run()
            else:
                system = StreamSystem.from_plan(dataset, queries, the_plan,
                                                params=params,
                                                value_column=value_column,
                                                where=where,
                                                strategy=strategy,
                                                native=not args.no_native)
                report = system.run(registry=registry)
        except ReproError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        print()
        if live is not None:
            print(f"records processed : {live.records_seen}")
            print(f"epochs            : {len(live.epoch_reports)}")
            print(f"intra-epoch cost  : {live.total_intra_cost():.0f}")
            print(f"end-of-epoch cost : {live.total_flush_cost():.0f}")
        else:
            if args.shards > 1:
                print(f"shards            : {args.shards} "
                      f"({args.partition}, {args.shard_executor})")
            print(report.summary())
            rate = LoadModel(params=params).sustainable_rate(
                report.per_record_cost)
            print(f"sustainable rate  : {rate / 1e6:.2f}M records/s "
                  "(at 200ns/probe)")
        if args.trace:
            print()
            print("trace (phase spans):")
            for span in registry.spans:
                print(f"  {span.name:<28} {span.seconds * 1e3:10.3f} ms")
        if args.metrics_json:
            manifest = RunManifest.collect(
                report, plan=the_plan, queries=queries, registry=registry,
                shard_results=getattr(system, "shard_results", None),
                shard_registries=getattr(system, "shard_registries", None),
                epoch_reports=(live.epoch_reports if live else None),
                reconfigurations=(live.reconfigurations if live else None),
                strategies=(resolve_strategies(the_plan.configuration,
                                               strategy)
                            if strategy is not None else None),
                strategy_decisions=strategy_decisions,
                extra=({"partition": system.partition_summary}
                       if getattr(system, "partition_summary", None)
                       is not None else None))
            out_path = manifest.write(args.metrics_json)
            print(f"metrics manifest  : {out_path}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
