"""``repro-plan`` — plan a workload from SQL and a captured trace.

The operator-facing front door, composing the whole library::

    repro-plan --memory 40000 --data trace.npz \\
        "select srcIP, count(*) from packets group by srcIP, time/60" \\
        "select srcIP, dstIP, count(*) from packets group by srcIP, dstIP, time/60"

reads the queries (the paper's GSQL dialect, WHERE supported), measures
statistics from the dataset (``.npz`` or ``.csv`` as written by
:mod:`repro.workloads.io`), runs the optimizer, and prints the plan with
its per-relation EXPLAIN breakdown — optionally executing it
(``--execute``) to report measured costs and the sustainable stream rate.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro.core.cost_model import CostParameters
from repro.core.explain import explain
from repro.core.feeding_graph import FeedingGraph
from repro.core.optimizer import plan
from repro.core.sql import parse_workload
from repro.errors import ReproError
from repro.gigascope.load import LoadModel
from repro.gigascope.runtime import StreamSystem
from repro.workloads.datasets import measure_statistics
from repro.workloads.io import load_csv, load_npz

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-plan",
        description="Plan (and optionally execute) a multi-aggregation "
                    "workload over a captured stream.")
    parser.add_argument("queries", nargs="+",
                        help="aggregation queries in the GSQL dialect")
    parser.add_argument("--data", required=True,
                        help="dataset file (.npz or .csv)")
    parser.add_argument("--memory", type=float, default=40_000,
                        help="LFTA budget in 4-byte units (default 40000)")
    parser.add_argument("--algorithm", default="gcsl",
                        choices=["gcsl", "gcpl", "gs", "epes", "none"])
    parser.add_argument("--phi", type=float, default=1.0,
                        help="phi for --algorithm gs")
    parser.add_argument("--evict-cost", type=float, default=50.0,
                        help="c2/c1 ratio (default 50, the paper's)")
    parser.add_argument("--peak-load", type=float, default=None,
                        help="bound on the end-of-epoch cost E_u")
    parser.add_argument("--flow-timeout", type=float, default=None,
                        help="measure flow lengths with this gap timeout "
                             "(clustered traces)")
    parser.add_argument("--value-columns", default="",
                        help="comma-separated float columns when loading "
                             "CSV")
    parser.add_argument("--execute", action="store_true",
                        help="also stream the dataset through the plan")
    return parser


def _load_dataset(path_text: str, value_columns: tuple[str, ...]):
    path = Path(path_text)
    if not path.exists():
        raise ReproError(f"no such dataset file: {path}")
    if path.suffix == ".npz":
        return load_npz(path)
    if path.suffix == ".csv":
        return load_csv(path, value_columns)
    raise ReproError(f"unsupported dataset format {path.suffix!r} "
                     "(use .npz or .csv)")


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        value_columns = tuple(
            v for v in args.value_columns.split(",") if v)
        dataset = _load_dataset(args.data, value_columns)
        queries, where = parse_workload(args.queries)
        graph = FeedingGraph(queries)
        for rel in graph.nodes:
            dataset.schema.attribute_set(rel)
        stats = measure_statistics(dataset, graph.nodes,
                                   flow_timeout=args.flow_timeout,
                                   counters=2 if any(
                                       q.aggregate.needs_value
                                       for q in queries) else 1)
        params = CostParameters(1.0, args.evict_cost)
        the_plan = plan(queries, stats, args.memory, params,
                        algorithm=args.algorithm, phi=args.phi,
                        peak_load_limit=args.peak_load)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    print(f"stream: {len(dataset)} records, "
          f"{dataset.duration:.1f}s, {len(queries)} queries, "
          f"{len(graph.phantoms)} candidate phantoms")
    if where is not None:
        print(f"where: {where}")
    print()
    print(explain(the_plan, stats, params).render())

    if args.execute:
        value_column = None
        for query in queries:
            if query.aggregate.needs_value:
                value_column = query.aggregate.column
        report = StreamSystem.from_plan(dataset, queries, the_plan,
                                        params=params,
                                        value_column=value_column,
                                        where=where).run()
        print()
        print(report.summary())
        rate = LoadModel(params=params).sustainable_rate(
            report.per_record_cost)
        print(f"sustainable rate  : {rate / 1e6:.2f}M records/s "
              "(at 200ns/probe)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
