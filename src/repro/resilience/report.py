"""Resilience accounting: what failed, what it cost, how it recovered.

A :class:`ResilienceReport` is assembled by
:class:`~repro.parallel.sharded.ShardedStreamSystem` during a run and
travels three ways: on the returned
:class:`~repro.gigascope.runtime.RunReport` (``report.resilience``), as
``resilience.*`` counters/histograms in the run's
:class:`~repro.observability.MetricsRegistry`, and as the ``resilience``
section of the :class:`~repro.observability.RunManifest` — which also
embeds the fault plan, so ``repro-plan --fault-plan manifest.json``
replays the exact failure.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["ResilienceReport", "ShardOutcome"]


@dataclass
class ShardOutcome:
    """One shard's journey through the retry layer."""

    shard: int
    records: int
    attempts: int = 0
    faults: list[str] = field(default_factory=list)
    errors: list[str] = field(default_factory=list)
    fallback: bool = False
    succeeded: bool = False

    @property
    def retries(self) -> int:
        return max(0, self.attempts - 1)

    def to_dict(self) -> dict:
        return {
            "shard": self.shard,
            "records": self.records,
            "attempts": self.attempts,
            "retries": self.retries,
            "faults": list(self.faults),
            "errors": list(self.errors),
            "fallback": self.fallback,
            "succeeded": self.succeeded,
        }


@dataclass
class ResilienceReport:
    """Run-level summary of faults seen and recovery work done."""

    policy: dict = field(default_factory=dict)
    fault_plan: dict | None = None
    shards: list[ShardOutcome] = field(default_factory=list)
    backoff_seconds: float = 0.0
    failed_attempt_seconds: float = 0.0
    #: Timed-out attempts that were cancelled (or whose worker was torn
    #: down) instead of being left to run concurrently with their retry.
    cancelled_attempts: int = 0

    def outcome(self, shard: int, records: int) -> ShardOutcome:
        """Get-or-create the outcome row for one shard."""
        for existing in self.shards:
            if existing.shard == shard:
                return existing
        created = ShardOutcome(shard, records)
        self.shards.append(created)
        return created

    # -- aggregates ----------------------------------------------------
    @property
    def total_attempts(self) -> int:
        return sum(o.attempts for o in self.shards)

    @property
    def total_retries(self) -> int:
        return sum(o.retries for o in self.shards)

    @property
    def total_fallbacks(self) -> int:
        return sum(1 for o in self.shards if o.fallback)

    @property
    def fault_counts(self) -> dict[str, int]:
        counts: dict[str, int] = {}
        for outcome in self.shards:
            for kind in outcome.faults:
                counts[kind] = counts.get(kind, 0) + 1
        return counts

    @property
    def overhead_seconds(self) -> float:
        """Wall time the run spent on recovery instead of progress."""
        return self.backoff_seconds + self.failed_attempt_seconds

    def record(self, registry) -> None:
        """Publish the summary into a :class:`MetricsRegistry`."""
        if registry is None:
            return
        registry.counter("resilience.attempts").inc(self.total_attempts)
        registry.counter("resilience.retries").inc(self.total_retries)
        registry.counter("resilience.fallbacks").inc(self.total_fallbacks)
        registry.counter("resilience.cancelled").inc(self.cancelled_attempts)
        for kind, count in sorted(self.fault_counts.items()):
            registry.counter(f"resilience.faults.{kind}").inc(count)
        registry.histogram("resilience.backoff_seconds").observe(
            self.backoff_seconds)
        registry.histogram("resilience.failed_attempt_seconds").observe(
            self.failed_attempt_seconds)

    def to_dict(self) -> dict:
        return {
            "policy": dict(self.policy),
            "fault_plan": self.fault_plan,
            "shards": [o.to_dict() for o in self.shards],
            "total_attempts": self.total_attempts,
            "total_retries": self.total_retries,
            "total_fallbacks": self.total_fallbacks,
            "fault_counts": self.fault_counts,
            "backoff_seconds": self.backoff_seconds,
            "failed_attempt_seconds": self.failed_attempt_seconds,
            "cancelled_attempts": self.cancelled_attempts,
            "overhead_seconds": self.overhead_seconds,
        }
