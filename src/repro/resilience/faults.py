"""Deterministic fault injection for shard workers.

A :class:`FaultPlan` is a declarative, seedable description of *what goes
wrong where*: each :class:`FaultSpec` targets one shard index (or all
shards) on one attempt number (or every attempt) and names a failure
mode. The plan is consulted from inside the production worker entry
point (:func:`repro.parallel.sharded._run_shard`), so an injected fault
exercises exactly the code path a real failure would — the crash
propagates through the executor, the retry layer, and (for the process
pool) inter-process pickling, nothing is mocked out.

Three fault kinds:

``crash``
    The worker raises :class:`InjectedFault` before touching the engine.
``delay``
    The worker sleeps ``delay_seconds`` before running — long enough,
    and the retry layer's timeout fires.
``corrupt``
    The worker runs the engine normally, then falsifies the returned
    record count and drops its sub-registry — garbage the parent's
    outcome validation must catch (see
    :func:`repro.parallel.sharded.ShardedStreamSystem`).

Plans serialize to plain JSON (:meth:`FaultPlan.to_dict` /
:meth:`FaultPlan.from_dict`), travel inside the run's
:class:`~repro.observability.RunManifest`, and can be replayed later
with ``repro-plan --fault-plan`` to reproduce a failure exactly.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.errors import ReproError

__all__ = ["FAULT_KINDS", "CorruptResultError", "FaultPlan", "FaultSpec",
           "InjectedFault"]

FAULT_KINDS = ("crash", "delay", "corrupt")


class InjectedFault(ReproError):
    """The failure a ``crash`` fault raises inside the worker."""


class CorruptResultError(ReproError):
    """A shard outcome failed the parent's validation checks."""


@dataclass(frozen=True)
class FaultSpec:
    """One planned fault: which shard, which attempt, what goes wrong.

    shard:
        Target shard index; ``None`` targets every shard.
    attempt:
        1-based attempt number the fault fires on; ``None`` fires on
        every attempt (including the serial fallback).
    kind:
        ``"crash"``, ``"delay"`` or ``"corrupt"``.
    delay_seconds:
        Sleep length for ``delay`` faults.
    """

    kind: str
    shard: int | None = None
    attempt: int | None = 1
    delay_seconds: float = 0.0

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ValueError(f"unknown fault kind {self.kind!r} "
                             f"(choose from {FAULT_KINDS})")

    def matches(self, shard: int, attempt: int) -> bool:
        return ((self.shard is None or self.shard == shard)
                and (self.attempt is None or self.attempt == attempt))

    def to_dict(self) -> dict:
        return {"kind": self.kind, "shard": self.shard,
                "attempt": self.attempt,
                "delay_seconds": self.delay_seconds}

    @classmethod
    def from_dict(cls, data: dict) -> "FaultSpec":
        return cls(kind=data["kind"], shard=data.get("shard"),
                   attempt=data.get("attempt"),
                   delay_seconds=float(data.get("delay_seconds", 0.0)))


class FaultPlan:
    """An ordered list of :class:`FaultSpec`; first match wins.

    Plain data end to end: picklable (it ships to worker processes
    inside the shard job) and JSON-round-trippable (it ships inside the
    run manifest).
    """

    def __init__(self, faults: tuple[FaultSpec, ...] | list[FaultSpec] = (),
                 seed: int | None = None):
        self.faults = tuple(faults)
        self.seed = seed

    # -- constructors --------------------------------------------------
    @classmethod
    def crash_once(cls, shards: int, attempt: int = 1) -> "FaultPlan":
        """Crash every shard's ``attempt``-th try exactly once."""
        return cls(tuple(FaultSpec("crash", shard=s, attempt=attempt)
                         for s in range(shards)))

    @classmethod
    def crash_always(cls, shard: int) -> "FaultPlan":
        """Crash one shard on every attempt — retries cannot save it."""
        return cls((FaultSpec("crash", shard=shard, attempt=None),))

    @classmethod
    def random(cls, shards: int, seed: int, fault_probability: float = 0.5,
               kinds: tuple[str, ...] = ("crash", "corrupt"),
               delay_seconds: float = 0.0) -> "FaultPlan":
        """A seed-deterministic plan: each shard independently draws
        whether its *first* attempt fails and with which kind.

        Only first attempts fault, so a random plan is always
        survivable by one retry — the shape property-based tests need.
        """
        rng = random.Random(seed)
        faults = []
        for shard in range(shards):
            if rng.random() < fault_probability:
                kind = rng.choice(list(kinds))
                faults.append(FaultSpec(kind, shard=shard, attempt=1,
                                        delay_seconds=delay_seconds))
        return cls(tuple(faults), seed=seed)

    # -- lookup --------------------------------------------------------
    def fault_for(self, shard: int, attempt: int) -> FaultSpec | None:
        """The first spec matching this (shard, attempt), if any."""
        for spec in self.faults:
            if spec.matches(shard, attempt):
                return spec
        return None

    def __len__(self) -> int:
        return len(self.faults)

    def __eq__(self, other: object) -> bool:
        return (isinstance(other, FaultPlan)
                and self.faults == other.faults and self.seed == other.seed)

    def __repr__(self) -> str:
        return f"FaultPlan({list(self.faults)!r}, seed={self.seed!r})"

    # -- serialization -------------------------------------------------
    def to_dict(self) -> dict:
        return {"seed": self.seed,
                "faults": [spec.to_dict() for spec in self.faults]}

    @classmethod
    def from_dict(cls, data: dict) -> "FaultPlan":
        return cls(tuple(FaultSpec.from_dict(entry)
                         for entry in data.get("faults", [])),
                   seed=data.get("seed"))
