"""Resilience: fault injection, retries, fallback, live checkpoints.

The failure-handling spine of the runtime, in four pieces that compose
with the existing sharded and live systems rather than wrapping them:

* :mod:`~repro.resilience.faults` — :class:`FaultPlan`, a seedable,
  JSON-serializable description of crash/delay/corrupt faults keyed by
  shard and attempt, injected inside the production worker entry point;
* :mod:`~repro.resilience.retry` — :class:`RetryPolicy`, exponential
  backoff with deterministic jitter, per-attempt timeouts, and an
  opt-out serial fallback;
* :mod:`~repro.resilience.report` — :class:`ResilienceReport`, the
  attempts/faults/fallbacks/overhead story of one run, published to the
  metrics registry and the run manifest;
* :mod:`~repro.resilience.checkpoint` — versioned snapshot/restore for
  :class:`~repro.gigascope.online.LiveStreamSystem`.

See ``docs/resilience.md`` for the fault model, the retry state
machine, and the checkpoint format.
"""

from repro.resilience.checkpoint import (
    CHECKPOINT_VERSION,
    load_live_checkpoint,
    read_checkpoint_document,
    save_live_checkpoint,
)
from repro.resilience.faults import (
    FAULT_KINDS,
    CorruptResultError,
    FaultPlan,
    FaultSpec,
    InjectedFault,
)
from repro.resilience.report import ResilienceReport, ShardOutcome
from repro.resilience.retry import RetryPolicy

__all__ = [
    "CHECKPOINT_VERSION",
    "CorruptResultError",
    "FAULT_KINDS",
    "FaultPlan",
    "FaultSpec",
    "InjectedFault",
    "ResilienceReport",
    "RetryPolicy",
    "ShardOutcome",
    "load_live_checkpoint",
    "read_checkpoint_document",
    "save_live_checkpoint",
]
