"""Checkpoint/restore for :class:`~repro.gigascope.online.LiveStreamSystem`.

A checkpoint freezes *everything the answers depend on* mid-stream: the
active and historical configurations with their cost counters (the
eras), the HFTA's accumulated partial aggregates, the open epoch's
buffered records (the in-flight LFTA state — tables themselves are
rebuilt per epoch by the engine, so the buffered raw records *are* the
LFTA's recoverable state), the watermark (last accepted timestamp), the
staged plan *and staged query set* (a reconfigure that has not reached
its epoch boundary yet must survive a restart and still land at that
boundary), emitted epoch reports and reconfigurations. Restoring and
replaying the remaining stream therefore reproduces byte-identical
epoch reports and final answers versus an uninterrupted run.

Format: a pickle whose top level is a plain dict carrying a magic
string and ``checkpoint_version`` (currently {version}) ahead of the
state payload, so a reader can reject foreign or future files with a
:class:`~repro.errors.CheckpointError` instead of a pickle traceback.
Version history: version 1 predates runtime query-set swaps (no
``_staged_queries``) and carries no ``extra`` payload; version 2
predates per-relation execution strategies (no ``strategy_spec`` /
``_strategy_state``); version 3 predates the columnar HFTA — its HFTA
payload holds raw eviction batch lists (plus a ``_totals_cache`` of
merged dicts) instead of folded per-group columnar state. Older files
are still readable — missing fields take their implied defaults (no
staged query set, all-hash strategies with an empty shared-table
state), and a version-3 HFTA upgrades itself on unpickle
(``HFTA.__setstate__`` drops the stale cache and keeps the batch
lists, which the first fold then compacts). The
``extra`` payload is an opaque caller dict: the multi-tenant
:class:`~repro.service.StreamService` stores its query registry,
tenant activation windows and admission configuration there so a
restart is transparent to tenants.

Two things are deliberately *not* serialized and must be re-attached on
restore: the adaptive ``controller`` and the metrics ``registry`` (both
commonly hold unpicklable callbacks, and neither affects answers).

Writes are atomic (temp file + rename), so a crash mid-checkpoint
leaves the previous snapshot intact — the property the
``repro-plan --checkpoint-dir`` resume loop relies on.
"""

from __future__ import annotations

import os
import pickle
from pathlib import Path

from repro.errors import CheckpointError

__all__ = ["CHECKPOINT_MAGIC", "CHECKPOINT_VERSION", "load_live_checkpoint",
           "read_checkpoint_document", "save_live_checkpoint"]

CHECKPOINT_MAGIC = "repro-live-checkpoint"
CHECKPOINT_VERSION = 4

__doc__ = __doc__.format(version=CHECKPOINT_VERSION)

#: Attributes of ``LiveStreamSystem`` captured verbatim in the snapshot.
_STATE_ATTRS = (
    "schema", "queries", "params", "value_column", "salt_seed", "where",
    "epoch_seconds", "hfta", "eras", "epoch_reports", "reconfigurations",
    "_staged_plan", "_staged_queries", "_pending_cols", "_pending_vals",
    "_pending_times", "_pending_epoch", "_last_time", "records_seen",
    "strategy_spec", "_strategy_state",
)

#: Fields added after version 1, with the value a version-1 snapshot
#: implies (version 1 predates staged query-set swaps).
_V1_DEFAULTS = {"_staged_queries": None}


def _upgrade_state(state: dict, version: int) -> None:
    """Fill state fields an older snapshot predates with the values it
    implies, mutating ``state`` (and its eras) in place."""
    if version < 2:
        for name, default in _V1_DEFAULTS.items():
            state.setdefault(name, default)
    if version < 3:
        # Version 2 predates per-relation strategies: everything ran the
        # hash machine with no shared-table state.
        from repro.gigascope.strategy import StrategyState

        state.setdefault("strategy_spec", None)
        state.setdefault("_strategy_state", StrategyState())
        for era in state.get("eras", ()):
            if not hasattr(era, "strategies"):
                era.strategies = {rel: "hash"
                                  for rel in era.configuration.relations}
    # version < 4 needs no handling here: the pre-columnar HFTA payload
    # (raw batch lists + `_totals_cache`) upgrades itself during
    # unpickling — ``HFTA.__setstate__`` fills the columnar fields and
    # drops the stale cache, and the first fold compacts the batches.


def save_live_checkpoint(system, path: str | Path,
                         extra: dict | None = None) -> Path:
    """Snapshot a live system to ``path``; returns the written path.

    ``extra`` is an opaque payload stored alongside the system state
    (e.g. the stream service's registry); read it back with
    :func:`read_checkpoint_document`.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    state = {name: getattr(system, name) for name in _STATE_ATTRS}
    document = {
        "magic": CHECKPOINT_MAGIC,
        "checkpoint_version": CHECKPOINT_VERSION,
        "state": state,
        "extra": dict(extra) if extra else {},
    }
    tmp = path.with_name(path.name + ".tmp")
    try:
        with open(tmp, "wb") as handle:
            pickle.dump(document, handle, protocol=pickle.HIGHEST_PROTOCOL)
        os.replace(tmp, path)
    except (OSError, pickle.PicklingError) as exc:
        tmp.unlink(missing_ok=True)
        raise CheckpointError(f"cannot write checkpoint {path}: {exc}") \
            from exc
    return path


def read_checkpoint_document(path: str | Path) -> dict:
    """Read and validate a checkpoint file; returns the full document.

    The returned dict carries ``state`` (the system attributes, with
    older versions' missing fields filled with their implied defaults)
    and ``extra`` (the caller payload, ``{}`` for version-1 files).
    """
    path = Path(path)
    try:
        with open(path, "rb") as handle:
            document = pickle.load(handle)
    except FileNotFoundError:
        raise CheckpointError(f"no such checkpoint: {path}") from None
    except (OSError, pickle.UnpicklingError, EOFError, AttributeError,
            ImportError) as exc:
        raise CheckpointError(f"cannot read checkpoint {path}: {exc}") \
            from exc
    if not isinstance(document, dict) or \
            document.get("magic") != CHECKPOINT_MAGIC:
        raise CheckpointError(
            f"{path} is not a live-stream checkpoint (bad magic)")
    version = document.get("checkpoint_version")
    if not isinstance(version, int) or \
            not 1 <= version <= CHECKPOINT_VERSION:
        raise CheckpointError(
            f"{path} has checkpoint_version {version!r}; this code "
            f"reads versions 1..{CHECKPOINT_VERSION}")
    state = document["state"]
    _upgrade_state(state, version)
    document.setdefault("extra", {})
    missing = [name for name in _STATE_ATTRS if name not in state]
    if missing:
        raise CheckpointError(
            f"{path} is missing state fields {missing}")
    return document


def _system_from_state(state: dict, controller=None, registry=None):
    from repro.gigascope.online import LiveStreamSystem

    system = LiveStreamSystem.__new__(LiveStreamSystem)
    for name in _STATE_ATTRS:
        setattr(system, name, state[name])
    system.controller = controller
    system.registry = registry
    return system


def load_live_checkpoint(path: str | Path, controller=None, registry=None):
    """Rebuild a :class:`LiveStreamSystem` from a snapshot.

    ``controller`` and ``registry`` re-attach the two un-serialized
    collaborators; both default to detached (None).
    """
    document = read_checkpoint_document(path)
    return _system_from_state(document["state"], controller=controller,
                              registry=registry)
