"""Retry policy: exponential backoff with deterministic jitter.

The policy is pure data plus pure arithmetic — the backoff sequence for
a given ``seed`` is fully deterministic, so a failed run replayed with
the same fault plan and policy sleeps the same amounts and takes the
same recovery path. The actual ``sleep`` callable is injected (tests
pass a recorder; production uses :func:`time.sleep`).
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass, field
from typing import Callable

__all__ = ["RetryPolicy"]


@dataclass
class RetryPolicy:
    """How hard :class:`~repro.parallel.sharded.ShardedStreamSystem`
    fights for a failing shard.

    max_attempts:
        Total attempts per shard on the primary executor (1 = no
        retries).
    backoff_base / backoff_multiplier / backoff_cap:
        Sleep before retry *k* (k >= 2) is
        ``min(cap, base * multiplier**(k-2))``, scaled by jitter.
    jitter:
        Uniform multiplicative jitter in ``[1, 1+jitter)``, drawn from a
        seeded RNG so runs are reproducible.
    timeout_seconds:
        Per-attempt wall-clock cap; ``None`` waits forever. With the
        process executor the wait on the worker future times out; with
        the serial executor the attempt cannot be interrupted, so an
        overlong attempt is failed *after* it returns (post-hoc).
    serial_fallback:
        After ``max_attempts`` process-executor failures, re-run the
        shard once on the in-process serial path before giving up
        (graceful degradation: slower, but immune to pool breakage and
        pickling trouble).
    seed:
        Seed for the jitter RNG.
    sleep:
        Injected sleep callable (excluded from serialization and
        equality).
    """

    max_attempts: int = 3
    backoff_base: float = 0.05
    backoff_multiplier: float = 2.0
    backoff_cap: float = 2.0
    jitter: float = 0.25
    timeout_seconds: float | None = None
    serial_fallback: bool = True
    seed: int = 0
    sleep: Callable[[float], None] = field(default=time.sleep, repr=False,
                                           compare=False)

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError(
                f"max_attempts must be >= 1, got {self.max_attempts}")
        if self.backoff_base < 0 or self.jitter < 0:
            raise ValueError("backoff_base and jitter must be >= 0")

    def rng(self) -> random.Random:
        """A fresh jitter RNG; one per run keeps runs independent."""
        return random.Random(self.seed)

    def backoff_seconds(self, attempt: int, rng: random.Random) -> float:
        """Sleep length before attempt ``attempt`` (2-based; attempt 1
        never waits). Deterministic given the RNG state."""
        if attempt <= 1 or self.backoff_base <= 0:
            return 0.0
        raw = self.backoff_base * self.backoff_multiplier ** (attempt - 2)
        return min(self.backoff_cap, raw) * (1.0 + self.jitter * rng.random())

    def to_dict(self) -> dict:
        return {
            "max_attempts": self.max_attempts,
            "backoff_base": self.backoff_base,
            "backoff_multiplier": self.backoff_multiplier,
            "backoff_cap": self.backoff_cap,
            "jitter": self.jitter,
            "timeout_seconds": self.timeout_seconds,
            "serial_fallback": self.serial_fallback,
            "seed": self.seed,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "RetryPolicy":
        known = {f for f in cls.__dataclass_fields__ if f != "sleep"}
        return cls(**{k: v for k, v in data.items() if k in known})
