"""Tables 2 and 3 — heuristic quality over *all* configurations.

For every valid configuration of the 4-attribute query set {A, B, C, D}
(the EPES enumeration; 76 configurations) and each memory budget:

* **Table 2** — the average relative error of SL/SR/PL/PR vs. ES;
* **Table 3** — how often SL is the best heuristic, and its average gap to
  the best heuristic when it is not.

Paper shape: SL has the lowest average error at every M (2-6%); SL is best
in 44-100% of configurations and within fractions of a percent of the best
otherwise.
"""

from __future__ import annotations

from repro.core.queries import QuerySet
from repro.experiments.common import (
    ExperimentResult,
    MEMORY_GRID,
    Series,
    paper_params,
)
from repro.experiments.space_allocation import (
    HEURISTICS,
    all_configurations,
    heuristic_errors,
    trace_statistics,
)

__all__ = ["run_tab2", "run_tab3", "run"]


def _sweep(full_scale: bool, seed: int,
           memories: tuple[int, ...]) -> dict[int, list[dict[str, float]]]:
    stats = trace_statistics(full_scale, seed)
    queries = QuerySet.counts(["A", "B", "C", "D"])
    configs = all_configurations(queries, stats)
    params = paper_params()
    out: dict[int, list[dict[str, float]]] = {}
    for memory in memories:
        out[memory] = [heuristic_errors(cfg, stats, float(memory), params)
                       for cfg in configs]
    return out


def run_tab2(full_scale: bool = False, seed: int = 0,
             memories: tuple[int, ...] = MEMORY_GRID) -> ExperimentResult:
    sweep = _sweep(full_scale, seed, memories)
    series = []
    for allocator in HEURISTICS:
        name = allocator.name
        means = tuple(
            sum(errors[name] for errors in sweep[m]) / len(sweep[m])
            for m in memories)
        series.append(Series(f"{name} (%)", memories, means))
    notes = [f"averaged over {len(next(iter(sweep.values())))} "
             "configurations of queries {A,B,C,D}",
             "paper Table 2: SL 2.2-6.0%, SR 5.3-9.4%, PL 14-23%, "
             "PR 10-23%"]
    return ExperimentResult(
        "tab2", "Average space-allocation error for the four heuristics",
        "M (units)", "average error vs ES (%)", series, notes)


def run_tab3(full_scale: bool = False, seed: int = 0,
             memories: tuple[int, ...] = MEMORY_GRID) -> ExperimentResult:
    sweep = _sweep(full_scale, seed, memories)
    best_share = []
    gap_when_not_best = []
    for m in memories:
        rows = sweep[m]
        sl_best = 0
        gaps = []
        for errors in rows:
            best = min(errors.values())
            if errors["SL"] <= best + 1e-9:
                sl_best += 1
            else:
                gaps.append(errors["SL"] - best)
        best_share.append(100.0 * sl_best / len(rows))
        gap_when_not_best.append(sum(gaps) / len(gaps) if gaps else 0.0)
    series = [
        Series("SL being best (%)", memories, tuple(best_share)),
        Series("gap from best when not (%)", memories,
               tuple(gap_when_not_best)),
    ]
    notes = ["paper Table 3: SL best in 44-100% of configurations; "
             "gap otherwise 0-2.2%"]
    return ExperimentResult(
        "tab3", "Statistics on SL across all configurations",
        "M (units)", "percent", series, notes)


def run(full_scale: bool = False, seed: int = 0) -> list[ExperimentResult]:
    return [run_tab2(full_scale=full_scale, seed=seed),
            run_tab3(full_scale=full_scale, seed=seed)]
