"""Shared machinery for the space-allocation experiments (Sec. 6.2).

Given a configuration, statistics measured from the clustered trace, and a
memory budget, each heuristic's Eq. 7 cost is compared against the ES
reference optimum; the experiments report relative errors
``(cost_heuristic - cost_ES) / cost_ES`` in percent, exactly as Figures
9-10 and Tables 2-3 do.
"""

from __future__ import annotations

from itertools import combinations

from repro.core.allocation import (
    ExhaustiveAllocator,
    ProportionalLinear,
    ProportionalSqrt,
    SupernodeLinear,
    SupernodeSqrt,
)
from repro.core.collision import LookupModel
from repro.core.configuration import Configuration
from repro.core.cost_model import CostParameters, per_record_cost
from repro.core.feeding_graph import FeedingGraph
from repro.core.queries import QuerySet
from repro.core.statistics import RelationStatistics
from repro.errors import ConfigurationError
from repro.experiments.common import (
    ExperimentResult,
    FULL_TRACE_RECORDS,
    MEMORY_GRID,
    Series,
    netflow_stream,
    paper_params,
    record_count,
)
from repro.workloads.datasets import measure_statistics

__all__ = [
    "HEURISTICS",
    "trace_statistics",
    "heuristic_errors",
    "allocation_figure",
    "all_configurations",
]

HEURISTICS = (SupernodeLinear(), SupernodeSqrt(), ProportionalLinear(),
              ProportionalSqrt())


def trace_statistics(full_scale: bool, seed: int = 0,
                     clustered: bool = False) -> RelationStatistics:
    """Statistics of the trace over every 4-attribute relation.

    The Section 6.2 space-allocation study is a pure cost-model comparison
    ("we compute the cost using Equation 7 with a suitable model for
    collision rate"), so flow lengths are omitted by default; pass
    ``clustered=True`` for the Section 6.3.3 real-data experiments, which
    derive flow length temporally.
    """
    n = record_count(full_scale, FULL_TRACE_RECORDS)
    trace = netflow_stream(n, seed=seed)
    relations = FeedingGraph(QuerySet.counts(["A", "B", "C", "D"])).nodes \
        + [q for q in QuerySet.counts(["ABCD"]).group_bys]
    return measure_statistics(trace, relations,
                              flow_timeout=1.0 if clustered else None)


def heuristic_errors(config: Configuration, stats: RelationStatistics,
                     memory: float, params: CostParameters
                     ) -> dict[str, float]:
    """Relative Eq. 7 cost error (%) of each heuristic vs. ES."""
    model = LookupModel()
    es_alloc = ExhaustiveAllocator().allocate(config, stats, memory, params)
    es_cost = per_record_cost(config, stats, es_alloc.buckets, model, params)
    errors = {}
    for allocator in HEURISTICS:
        alloc = allocator.allocate(config, stats, memory, params)
        cost = per_record_cost(config, stats, alloc.buckets, model, params)
        errors[allocator.name] = max(100.0 * (cost - es_cost) / es_cost, 0.0)
    return errors


def allocation_figure(experiment_id: str, notation: str,
                      queries: list | None,
                      full_scale: bool = False, seed: int = 0,
                      memories: tuple[int, ...] = MEMORY_GRID
                      ) -> ExperimentResult:
    """One panel of Figure 9/10: heuristic error vs. M for one config."""
    stats = trace_statistics(full_scale, seed)
    config = Configuration.from_notation(notation, queries)
    params = paper_params()
    per_heuristic: dict[str, list[float]] = {h.name: [] for h in HEURISTICS}
    for memory in memories:
        errors = heuristic_errors(config, stats, float(memory), params)
        for name, err in errors.items():
            per_heuristic[name].append(err)
    series = [Series(name, memories, tuple(errs))
              for name, errs in per_heuristic.items()]
    notes = ["expected shape: SL lowest nearly everywhere; PL/PR can reach "
             "tens of percent (paper Figs. 9-10)"]
    return ExperimentResult(
        experiment_id, f"Space allocation error vs ES for {notation}",
        "M (units)", "error (%)", series, notes)


def all_configurations(queries: QuerySet,
                       stats: RelationStatistics) -> list[Configuration]:
    """Every configuration the paper's evaluation enumerates.

    Follows the paper's Section 6.2 "all possible configurations",
    including its single-child-phantom prune (see EXPERIMENTS.md for why
    that prune is heuristic rather than exact).
    """
    graph = FeedingGraph(queries)
    candidates = [p for p in graph.phantoms if stats.has(p)]
    configs: list[Configuration] = []
    for k in range(len(candidates) + 1):
        for subset in combinations(candidates, k):
            try:
                config = Configuration.from_relations(
                    list(queries.group_bys) + list(subset),
                    queries.group_bys)
            except ConfigurationError:
                continue
            if any(len(config.children(p)) < 2 for p in config.phantoms):
                continue
            configs.append(config)
    return configs
