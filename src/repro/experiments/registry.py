"""Registry mapping experiment ids to their runners.

Every table and figure of the paper's evaluation has an entry; ids match
DESIGN.md's per-experiment index.
"""

from __future__ import annotations

from typing import Callable

from repro.experiments import (
    ext_sensitivity,
    fig05_collision_validation,
    fig06_collision_components,
    fig07_collision_curve,
    fig08_linear_fit,
    fig09_fig10_space_allocation,
    fig11_fig12_phantom_choice,
    fig13_fig14_measured,
    fig15_peak_load,
    tab01_collision_variation,
    tab02_tab03_heuristic_stats,
    timing,
)
from repro.experiments.common import ExperimentResult

__all__ = ["REGISTRY", "run_experiment", "experiment_ids"]

REGISTRY: dict[str, Callable[..., ExperimentResult]] = {
    "fig5": fig05_collision_validation.run,
    "fig6": fig06_collision_components.run,
    "tab1": tab01_collision_variation.run,
    "fig7": fig07_collision_curve.run,
    "fig8": fig08_linear_fit.run,
    "fig9a": fig09_fig10_space_allocation.run_fig9a,
    "fig9b": fig09_fig10_space_allocation.run_fig9b,
    "fig10a": fig09_fig10_space_allocation.run_fig10a,
    "fig10b": fig09_fig10_space_allocation.run_fig10b,
    "tab2": tab02_tab03_heuristic_stats.run_tab2,
    "tab3": tab02_tab03_heuristic_stats.run_tab3,
    "fig11": fig11_fig12_phantom_choice.run_fig11,
    "fig12": fig11_fig12_phantom_choice.run_fig12,
    "fig13": fig13_fig14_measured.run_fig13,
    "fig14": fig13_fig14_measured.run_fig14,
    "fig15": fig15_peak_load.run,
    "timing": timing.run,
    # Extensions beyond the paper's artifacts (sensitivity studies).
    "ext_skew": ext_sensitivity.run_skew,
    "ext_concurrency": ext_sensitivity.run_concurrency,
}

#: Experiments whose runners accept the ``full_scale`` switch.
_SCALED = {"fig5", "fig9a", "fig9b", "fig10a", "fig10b", "tab2", "tab3",
           "fig11", "fig12", "fig13", "fig14", "fig15",
           "ext_skew", "ext_concurrency"}


def experiment_ids() -> list[str]:
    return list(REGISTRY)


def run_experiment(experiment_id: str,
                   full_scale: bool = False) -> ExperimentResult:
    """Run one experiment by id (e.g. ``"fig13"``)."""
    try:
        runner = REGISTRY[experiment_id]
    except KeyError:
        raise KeyError(
            f"unknown experiment {experiment_id!r}; "
            f"known: {', '.join(REGISTRY)}") from None
    if experiment_id in _SCALED:
        return runner(full_scale=full_scale)
    return runner()
