"""Figure 6 — probability of collision vs. k (the truncation argument).

For ``g = 3000, b = 1000`` the per-``k`` contribution to Eq. 13 is plotted
against ``k``: a bell shape (binomial ~ Gaussian, amplitude ``k - 1``)
peaking near ``mu = g/b`` and negligible past ``mu + 5 sigma`` (~12), which
is why the paper's truncated sum needs ~12 terms instead of ~3000.
"""

from __future__ import annotations

import numpy as np

from repro.core.collision import precise_rate, truncated_rate
from repro.core.collision.precise import collision_component, truncation_limit
from repro.experiments.common import ExperimentResult, Series

__all__ = ["run"]


def run(groups: int = 3000, buckets: int = 1000,
        k_max: int = 20) -> ExperimentResult:
    ks = np.arange(2, k_max + 1)
    comps = collision_component(ks, groups, buckets)
    cutoff3 = truncation_limit(groups, buckets, sigmas=3.0)
    cutoff5 = truncation_limit(groups, buckets, sigmas=5.0)
    exact = precise_rate(groups, buckets)
    truncated = truncated_rate(groups, buckets, sigmas=5.0)
    series = [Series("probability of collision", tuple(int(k) for k in ks),
                     tuple(float(c) for c in comps))]
    peak_k = int(ks[np.argmax(comps)])
    notes = [
        f"peak at k = {peak_k} (paper: k = 4, mean g/b = {groups / buckets:g} "
        "shifted by the k-1 amplitude)",
        f"mu + 3 sigma = {cutoff3}, mu + 5 sigma = {cutoff5} "
        "(paper: 8.2 and ~12)",
        f"truncated sum {truncated:.6f} vs exact closed form {exact:.6f} "
        f"(relative error {abs(truncated - exact) / exact:.2e})",
    ]
    return ExperimentResult(
        "fig6", f"Collision probability vs k (g={groups}, b={buckets})",
        "k", "probability of collision", series, notes)
