"""Planning-time measurement (paper Sec. 6.3.4's sub-millisecond claim).

The paper reports GCSL running in well under a millisecond (C prototype),
arguing that configurations can be re-planned adaptively as stream
statistics drift. We re-measure in Python: still a few milliseconds —
comfortably within an epoch boundary's budget.
"""

from __future__ import annotations

import time

from repro.core.optimizer import plan
from repro.core.queries import QuerySet
from repro.experiments.common import (
    ExperimentResult,
    MEMORY_GRID,
    Series,
    paper_params,
)
from repro.core.statistics import RelationStatistics

__all__ = ["run", "PAPER_LIKE_GROUPS"]

#: Statistics shaped like the paper's trace, for a data-free timing run.
PAPER_LIKE_GROUPS = {
    "A": 552, "B": 760, "C": 940, "D": 1120,
    "AB": 1846, "AC": 1520, "AD": 1610, "BC": 1730, "BD": 1940, "CD": 2050,
    "ABC": 2117, "ABD": 2260, "ACD": 2390, "BCD": 2520, "ABCD": 2837,
}


def run(repeats: int = 20,
        memories: tuple[int, ...] = MEMORY_GRID) -> ExperimentResult:
    stats = RelationStatistics.from_counts(PAPER_LIKE_GROUPS)
    queries = QuerySet.counts(["A", "B", "C", "D"])
    params = paper_params()
    gcsl_ms, gs_ms = [], []
    for memory in memories:
        plan(queries, stats, memory, params)  # warm-up
        start = time.perf_counter()
        for _ in range(repeats):
            plan(queries, stats, memory, params, algorithm="gcsl")
        gcsl_ms.append(1e3 * (time.perf_counter() - start) / repeats)
        start = time.perf_counter()
        for _ in range(repeats):
            plan(queries, stats, memory, params, algorithm="gs", phi=1.0)
        gs_ms.append(1e3 * (time.perf_counter() - start) / repeats)
    series = [
        Series("GCSL (ms)", memories, tuple(gcsl_ms)),
        Series("GS (ms)", memories, tuple(gs_ms)),
    ]
    notes = [
        "paper: sub-millisecond in C; a few ms in Python still supports "
        "adaptive re-planning at epoch boundaries",
    ]
    return ExperimentResult(
        "timing", "Planning time of the greedy algorithms",
        "M (units)", "milliseconds per plan", series, notes)
