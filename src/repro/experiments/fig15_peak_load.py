"""Figure 15 — shrink vs. shift under a peak-load constraint.

Setup (paper Sec. 6.3.4): real-like data, queries {AB, BC, BD, CD},
M = 40,000. The GCSL plan's end-of-epoch cost ``E_u`` is computed; for each
peak bound ``E_p = p% * E_u`` (p = 82..98) the allocation is repaired with
*shrink* and with *shift*, the repaired systems are executed on the stream,
and the measured intra-epoch costs are reported relative to the unrepaired
plan.

Paper shape: shift wins when ``E_p`` is close to ``E_u``; shrink wins when
the gap is large.
"""

from __future__ import annotations

from repro.core.collision import LookupModel
from repro.core.cost_model import flush_cost
from repro.core.optimizer import plan
from repro.core.peak_load import repair_shift, repair_shrink
from repro.core.queries import QuerySet
from repro.core.feeding_graph import FeedingGraph
from repro.errors import AllocationError
from repro.experiments.common import (
    ExperimentResult,
    FULL_TRACE_RECORDS,
    Series,
    netflow_stream,
    paper_params,
    record_count,
)
from repro.gigascope.engine import simulate
from repro.workloads.datasets import measure_statistics

__all__ = ["run"]

#: The paper plots 82..98%; we extend down to 70% because in our cost
#: landscape the shift method stays near-optimal through the paper's range
#: and only breaks down (leaves at one bucket, "-" in the output) for
#: tighter bounds — the same shift-near/shrink-far phenomenon, with the
#: crossover at a different absolute position.
PERCENTS = (70, 74, 78, 82, 86, 90, 94, 98)


def _measured(dataset, config, allocation, params) -> float:
    buckets = {rel: max(int(b), 1) for rel, b in allocation.buckets.items()}
    result = simulate(dataset, config, buckets,
                      epoch_seconds=dataset.duration + 1.0)
    return result.per_record_cost(params)


def run(full_scale: bool = False, seed: int = 0, memory: float = 40_000.0,
        percents: tuple[int, ...] = PERCENTS) -> ExperimentResult:
    n = record_count(full_scale, FULL_TRACE_RECORDS)
    dataset = netflow_stream(n, seed=seed)
    queries = QuerySet.counts(["AB", "BC", "BD", "CD"])
    stats = measure_statistics(dataset, FeedingGraph(queries).nodes,
                               flow_timeout=1.0)
    params = paper_params()
    model = LookupModel()
    base_plan = plan(queries, stats, memory, params, algorithm="gcsl",
                     integer=False)
    config = base_plan.configuration
    base_flush = flush_cost(config, stats, base_plan.allocation.buckets,
                            model, params).total
    base_cost = _measured(dataset, config, base_plan.allocation, params)

    shrink_rel, shift_rel = [], []
    for pct in percents:
        limit = base_flush * pct / 100.0
        row = {}
        for name, fn in (("shrink", repair_shrink), ("shift", repair_shift)):
            try:
                repaired = fn(config, stats, base_plan.allocation, model,
                              params, limit)
                row[name] = _measured(dataset, config, repaired,
                                      params) / base_cost
            except AllocationError:
                row[name] = None
        shrink_rel.append(row["shrink"])
        shift_rel.append(row["shift"])
    series = [
        Series("shrink", percents, tuple(shrink_rel)),
        Series("shift", percents, tuple(shift_rel)),
    ]
    notes = [
        f"E_u of the unconstrained GCSL plan: {base_flush:.0f} cost units; "
        f"configuration {config}",
        "expected: shift better near 100%, shrink better (or the only "
        "option, '-' = shift infeasible) for tight bounds (paper Fig. 15)",
    ]
    return ExperimentResult(
        "fig15", "Peak-load repair: shrink vs shift (M=40k)",
        "peak load constraint (% of E_u)",
        "relative measured cost", series, notes)
