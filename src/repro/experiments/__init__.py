"""Reproductions of every table and figure in the paper's evaluation.

One module per artifact (see DESIGN.md's per-experiment index); the
:mod:`~repro.experiments.registry` maps ids (``fig5`` .. ``fig15``,
``tab1`` .. ``tab3``, ``timing``) to runners, and
:mod:`~repro.experiments.cli` exposes them as ``repro-experiments``.
"""

from repro.experiments.common import ExperimentResult, Series

__all__ = ["ExperimentResult", "Series"]
