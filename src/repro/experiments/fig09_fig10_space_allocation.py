"""Figures 9 and 10 — heuristic space allocation vs. ES on four configs.

* Fig. 9(a): ``(ABC(AC(A C) B))`` — queries {A, B, C};
* Fig. 9(b): ``AB(A B) CD(C D)`` — queries {A, B, C, D};
* Fig. 10(a): ``(ABCD(ABC(A BC(B C)) D))`` — queries {A, B, C, D};
* Fig. 10(b): ``(ABCD(AB BCD(BC BD CD)))`` — queries {AB, BC, BD, CD}.

For each, the SL/SR/PL/PR cost error relative to ES over M = 20k..100k.
Paper shape: SL almost always best; PL/PR errors up to ~35%.
"""

from __future__ import annotations

from repro.experiments.common import ExperimentResult, MEMORY_GRID
from repro.experiments.space_allocation import allocation_figure

__all__ = ["run_fig9a", "run_fig9b", "run_fig10a", "run_fig10b", "run"]

PANELS = {
    "fig9a": ("(ABC(AC(A C) B))", None),
    "fig9b": ("AB(A B) CD(C D)", None),
    "fig10a": ("(ABCD(ABC(A BC(B C)) D))", None),
    "fig10b": ("(ABCD(AB BCD(BC BD CD)))", None),
}


def run_panel(panel: str, full_scale: bool = False, seed: int = 0,
              memories: tuple[int, ...] = MEMORY_GRID) -> ExperimentResult:
    notation, queries = PANELS[panel]
    return allocation_figure(panel, notation, queries, full_scale, seed,
                             memories)


def run_fig9a(**kwargs) -> ExperimentResult:
    return run_panel("fig9a", **kwargs)


def run_fig9b(**kwargs) -> ExperimentResult:
    return run_panel("fig9b", **kwargs)


def run_fig10a(**kwargs) -> ExperimentResult:
    return run_panel("fig10a", **kwargs)


def run_fig10b(**kwargs) -> ExperimentResult:
    return run_panel("fig10b", **kwargs)


def run(full_scale: bool = False, seed: int = 0) -> list[ExperimentResult]:
    """All four panels."""
    return [run_panel(panel, full_scale=full_scale, seed=seed)
            for panel in PANELS]
