"""Figure 7 — the collision-rate curve as a function of ``g/b``.

The precise model over ``g/b`` in [0, 50], plus the paper's 6-interval
degree-2 regression with its achieved maximum / average relative errors
(paper targets: 5% max, < 1% average).
"""

from __future__ import annotations

import numpy as np

from repro.core.collision import fit_piecewise, precise_rate
from repro.experiments.common import ExperimentResult, Series

__all__ = ["run"]


def run(max_ratio: float = 50.0, points: int = 26) -> ExperimentResult:
    ratios = tuple(np.linspace(0.0, max_ratio, points))
    curve = tuple(precise_rate(r * 1000, 1000) for r in ratios)
    fit = fit_piecewise(max_ratio=max_ratio)
    fitted = tuple(fit.rate(r * 1000, 1000) for r in ratios)
    series = [
        Series("collision rate", ratios, curve),
        Series("piecewise regression", ratios, fitted),
    ]
    notes = [
        f"piecewise fit: 6 intervals, degree 2, max rel. error "
        f"{fit.max_relative_error:.2%} (paper target 5%), mean "
        f"{fit.mean_relative_error:.2%} (paper: < 1%)",
    ]
    return ExperimentResult(
        "fig7", "The collision rate curve x(g/b)",
        "g/b", "collision rate", series, notes)
