"""Figure 5 — collision rates of real data vs. the rough and precise models.

The paper removes clusteredness from the real trace ("grouped all packets of
a flow into a single record"), extracts datasets with 1-4 attributes, and
measures hash-table collision rates over a range of ``g/b``, comparing with
Eq. 10 (rough) and Eq. 13 (precise). The paper reports > 95% of measured
points within 5% of the precise model, with the rough model diverging for
small ``g/b``.

We reproduce this with the netflow-like trace: collapse flows, project to
``A``, ``AB``, ``ABC``, ``ABCD``, stream each projection through a single
direct-mapped table sized for each target ratio, and report the measured
collision rate next to both models.
"""

from __future__ import annotations


from repro.core.attributes import AttributeSet
from repro.core.collision import precise_rate, rough_rate
from repro.core.configuration import Configuration
from repro.experiments.common import (
    ExperimentResult,
    FULL_TRACE_RECORDS,
    Series,
    netflow_stream,
    record_count,
)
from repro.gigascope.engine import simulate
from repro.gigascope.hashing import HashCache
from repro.workloads.datasets import one_record_per_flow

__all__ = ["run"]

PROJECTIONS = ("A", "AB", "ABC", "ABCD")
DEFAULT_RATIOS = (0.5, 1.0, 2.0, 3.0, 4.0, 6.0, 8.0, 10.0)


def measured_collision_rate(dataset, attrs: AttributeSet, buckets: int,
                            hash_cache: HashCache | None = None) -> float:
    """Collision rate of one table over the whole stream as a single epoch."""
    config = Configuration.flat([attrs])
    horizon = dataset.duration + 1.0
    result = simulate(dataset, config, {attrs: buckets},
                      epoch_seconds=horizon, hash_cache=hash_cache)
    counters = result.counters.counters(attrs)
    if counters.arrivals_intra == 0:
        return 0.0
    return counters.evictions_intra / counters.arrivals_intra


def run(full_scale: bool = False, seed: int = 0,
        ratios: tuple[float, ...] = DEFAULT_RATIOS) -> ExperimentResult:
    n = record_count(full_scale, FULL_TRACE_RECORDS)
    trace = netflow_stream(n, seed=seed)

    series = [
        Series("rough model", tuple(ratios),
               tuple(rough_rate(r * 1000, 1000) for r in ratios)),
        Series("precise model", tuple(ratios),
               tuple(precise_rate(r * 1000, 1000) for r in ratios)),
    ]
    worst_gap = 0.0
    within = 0
    total = 0
    for label in PROJECTIONS:
        attrs = AttributeSet.parse(label)
        # The paper's clusteredness removal, per extracted dataset: one
        # record per flow at this projection's granularity.
        collapsed = one_record_per_flow(trace, attrs)
        g = collapsed.group_count(attrs)
        measured = []
        # Only the bucket count varies across the sweep, so the hashing
        # work (group codes + digests) is shared across all ratios.
        cache = HashCache()
        for ratio in ratios:
            buckets = max(int(round(g / ratio)), 1)
            x = measured_collision_rate(collapsed, attrs, buckets, cache)
            measured.append(x)
            model = precise_rate(g, buckets)
            if model > 0.02:
                total += 1
                gap = abs(x - model) / model
                worst_gap = max(worst_gap, gap)
                if gap <= 0.05:
                    within += 1
        series.append(Series(f"measured, {len(attrs)} attribute(s)",
                             tuple(ratios), tuple(measured)))
    notes = [
        f"{within}/{total} measured points within 5% of the precise model "
        f"(paper: >95%); worst gap {worst_gap:.1%}",
        "rough model diverges at small g/b, converges for large g/b "
        "(paper Sec. 4.2)",
    ]
    return ExperimentResult(
        "fig5", "Collision rates of real(-like) data vs. models",
        "g/b", "collision rate", series, notes)
