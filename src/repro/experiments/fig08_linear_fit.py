"""Figure 8 / Eq. 16 — the low-collision region is (almost) a line.

Zooming into ``x < 0.4``, a linear regression of the precise curve yields
the paper's ``x = 0.0267 + 0.354 (g/b)``; we re-derive the coefficients and
report the fit error over the region.
"""

from __future__ import annotations

import numpy as np

from repro.core.collision import fit_linear_low_region, precise_rate
from repro.core.collision.lookup import PAPER_ALPHA, PAPER_MU
from repro.experiments.common import ExperimentResult, Series

__all__ = ["run"]


def run(max_rate: float = 0.4, points: int = 21) -> ExperimentResult:
    alpha, mu = fit_linear_low_region(max_rate=max_rate)
    # Sample the region up to where the curve hits max_rate.
    hi = 0.1
    while precise_rate(hi * 1000, 1000) < max_rate:
        hi += 0.01
    ratios = tuple(np.linspace(0.02, hi, points))
    actual = tuple(precise_rate(r * 1000, 1000) for r in ratios)
    fitted = tuple(alpha + mu * r for r in ratios)
    # Relative error is judged away from the origin (x ~ 0 makes any
    # absolute gap look huge); the paper's ~5% average refers to the bulk
    # of the region.
    rel_errors = [abs(f - a) / a for a, f in zip(actual, fitted) if a > 0.05]
    series = [
        Series("actual collision rate", ratios, actual),
        Series("regression", ratios, fitted),
        Series("paper Eq. 16", ratios,
               tuple(PAPER_ALPHA + PAPER_MU * r for r in ratios)),
    ]
    notes = [
        f"re-derived fit: x = {alpha:.4f} + {mu:.4f} (g/b); paper: "
        f"x = {PAPER_ALPHA} + {PAPER_MU} (g/b)",
        f"average relative error of the fit: {np.mean(rel_errors):.2%} "
        "(paper: ~5%)",
    ]
    return ExperimentResult(
        "fig8", "Linear regression of the low collision-rate region",
        "g/b", "collision rate", series, notes)
