"""Extension experiments beyond the paper's figures.

Two sensitivity studies the paper's evaluation raises but does not run:

* ``ext_skew`` — how group-popularity skew changes the phantom benefit.
  The paper's synthetic data is uniform; real traffic is Zipf. Skew
  concentrates records in few groups, which *lowers* collision rates (the
  resident group usually matches) and so shrinks the eviction side of the
  cost — we measure planned-vs-naive cost across Zipf exponents.
* ``ext_concurrency`` — how flow interleaving changes the clustered-data
  improvement factor (the knob behind Figure 14's magnitude; see
  EXPERIMENTS.md). More concurrent flows break per-bucket runs at the
  query tables while the planned configuration keeps absorbing them at
  the finest granularity.
"""

from __future__ import annotations

from repro.core.optimizer import plan
from repro.core.queries import QuerySet
from repro.core.feeding_graph import FeedingGraph
from repro.experiments.common import (
    ExperimentResult,
    FULL_TRACE_RECORDS,
    Series,
    paper_params,
    record_count,
)
from repro.experiments.common import _paper_universe
from repro.experiments.fig13_fig14_measured import measured_per_record_cost
from repro.workloads import NetflowTraceGenerator, uniform_dataset
from repro.workloads.datasets import measure_statistics

__all__ = ["run_skew", "run_concurrency"]

SKEW_EXPONENTS = (0.0, 0.5, 1.0, 1.5, 2.0)
FLOW_SECONDS = (0.5, 2.0, 8.0, 20.0)


def run_skew(full_scale: bool = False, seed: int = 0,
             memory: float = 40_000.0,
             exponents: tuple[float, ...] = SKEW_EXPONENTS
             ) -> ExperimentResult:
    """Measured planned/naive costs across group-popularity skew."""
    n = record_count(full_scale, FULL_TRACE_RECORDS)
    queries = QuerySet.counts(["A", "B", "C", "D"])
    params = paper_params()
    universe = _paper_universe(seed)
    planned_cost, naive_cost = [], []
    for exponent in exponents:
        data = uniform_dataset(universe, n, duration=62.0, seed=seed + 1,
                               zipf_exponent=exponent)
        stats = measure_statistics(data, FeedingGraph(queries).nodes)
        planned = plan(queries, stats, memory, params)
        naive = plan(queries, stats, memory, params, algorithm="none")
        planned_cost.append(measured_per_record_cost(data, planned, params))
        naive_cost.append(measured_per_record_cost(data, naive, params))
    series = [
        Series("GCSL plan", exponents, tuple(planned_cost)),
        Series("no phantom", exponents, tuple(naive_cost)),
        Series("improvement (x)", exponents,
               tuple(n_ / p for n_, p in zip(naive_cost, planned_cost))),
    ]
    notes = ["skew lowers both costs (hot groups rarely collide) but "
             "phantom sharing keeps a multiplicative edge"]
    return ExperimentResult(
        "ext_skew", "Sensitivity to group-popularity skew (M=40k)",
        "zipf exponent", "measured cost per record", series, notes)


def run_concurrency(full_scale: bool = False, seed: int = 0,
                    memory: float = 20_000.0,
                    flow_seconds: tuple[float, ...] = FLOW_SECONDS
                    ) -> ExperimentResult:
    """The Figure 14 improvement factor vs. flow concurrency."""
    n = record_count(full_scale, FULL_TRACE_RECORDS)
    queries = QuerySet.counts(["AB", "BC", "BD", "CD"])
    params = paper_params()
    universe = _paper_universe(seed)
    mean_flow_length = max(300.0 * n / FULL_TRACE_RECORDS, 20.0)
    planned_cost, naive_cost, concurrency = [], [], []
    for seconds in flow_seconds:
        generator = NetflowTraceGenerator(
            universe, mean_flow_length=mean_flow_length,
            mean_flow_seconds=seconds)
        data = generator.generate(n, duration=62.0, seed=seed + 1)
        stats = measure_statistics(data, FeedingGraph(queries).nodes,
                                   flow_timeout=1.0)
        planned = plan(queries, stats, memory, params)
        naive = plan(queries, stats, memory, params, algorithm="none")
        planned_cost.append(measured_per_record_cost(data, planned, params))
        naive_cost.append(measured_per_record_cost(data, naive, params))
        concurrency.append(n / mean_flow_length * seconds / 62.0)
    series = [
        Series("GCSL plan", flow_seconds, tuple(planned_cost)),
        Series("no phantom", flow_seconds, tuple(naive_cost)),
        Series("improvement (x)", flow_seconds,
               tuple(n_ / p for n_, p in zip(naive_cost, planned_cost))),
        Series("~concurrent flows", flow_seconds, tuple(concurrency)),
    ]
    notes = ["the Fig. 14 no-phantom penalty grows with interleaving — "
             "the unreported property of the paper's trace that sets its "
             "~100x headline (EXPERIMENTS.md)"]
    return ExperimentResult(
        "ext_concurrency",
        "Clustered-data improvement vs flow concurrency (M=20k)",
        "mean flow seconds", "measured cost per record", series, notes)
