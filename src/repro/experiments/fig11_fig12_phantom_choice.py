"""Figures 11 and 12 — comparing the phantom-choosing algorithms.

Setup (paper Sec. 6.3.1): queries {A, B, C, D} on the 4-dimensional
uniform dataset, M = 40,000. Costs are Eq. 7 predictions normalized by the
EPES (optimal) cost.

* **Figure 11** — GS's cost as a function of ``phi`` shows a knee (too
  little space per phantom -> high collision rates; too much -> no room
  for further phantoms). GCSL sits below the whole GS curve; GC with PL
  allocation ("GCPL") isolates how much of the win is allocation vs.
  choosing.
* **Figure 12** — the cost trajectory as phantoms are added one by one;
  the first phantom gives the largest drop.
"""

from __future__ import annotations

from repro.core.choosing import ExhaustiveChoice, GreedySpace, gcpl, gcsl
from repro.core.queries import QuerySet
from repro.core.feeding_graph import FeedingGraph
from repro.experiments.common import (
    ExperimentResult,
    FULL_SYNTHETIC_RECORDS,
    Series,
    paper_params,
    record_count,
    synthetic_stream,
)
from repro.workloads.datasets import measure_statistics

__all__ = ["run_fig11", "run_fig12", "run", "synthetic_statistics"]

PHIS = (0.6, 0.7, 0.8, 0.9, 1.0, 1.1, 1.2, 1.3)


def synthetic_statistics(full_scale: bool = False, seed: int = 0):
    n = record_count(full_scale, FULL_SYNTHETIC_RECORDS)
    data = synthetic_stream(n, seed=seed)
    queries = QuerySet.counts(["A", "B", "C", "D"])
    return measure_statistics(data, FeedingGraph(queries).nodes)


def run_fig11(full_scale: bool = False, seed: int = 0,
              memory: float = 40_000.0,
              phis: tuple[float, ...] = PHIS) -> ExperimentResult:
    stats = synthetic_statistics(full_scale, seed)
    queries = QuerySet.counts(["A", "B", "C", "D"])
    params = paper_params()
    optimal = ExhaustiveChoice().choose(queries, stats, memory, params).cost
    gs_curve = tuple(
        GreedySpace(phi=phi).choose(queries, stats, memory, params).cost
        / optimal
        for phi in phis)
    gcsl_cost = gcsl().choose(queries, stats, memory, params).cost / optimal
    gcpl_cost = gcpl().choose(queries, stats, memory, params).cost / optimal
    series = [
        Series("GS", phis, gs_curve),
        Series("GCSL", phis, tuple([gcsl_cost] * len(phis))),
        Series("GCPL", phis, tuple([gcpl_cost] * len(phis))),
    ]
    best_gs = min(gs_curve)
    notes = [
        f"GCSL {gcsl_cost:.3f}x optimal; best GS over phi {best_gs:.3f}x "
        "(paper: GCSL below GS for every phi)",
        "expected: knee in the GS curve; GCPL lower-bounds GS "
        "(paper Fig. 11)",
    ]
    return ExperimentResult(
        "fig11", "Phantom choosing algorithms vs phi (M=40k, {A,B,C,D})",
        "phi", "relative cost (vs EPES)", series, notes)


def run_fig12(full_scale: bool = False, seed: int = 0,
              memory: float = 40_000.0,
              gs_phis: tuple[float, ...] = (0.6, 0.8, 1.0, 1.1, 1.2, 1.3)
              ) -> ExperimentResult:
    stats = synthetic_statistics(full_scale, seed)
    queries = QuerySet.counts(["A", "B", "C", "D"])
    params = paper_params()
    optimal = ExhaustiveChoice().choose(queries, stats, memory, params).cost
    series = []
    for name, chooser in (
            [("GCSL", gcsl()), ("GCPL", gcpl())]
            + [(f"GS phi={phi:g}", GreedySpace(phi=phi))
               for phi in gs_phis]):
        result = chooser.choose(queries, stats, memory, params)
        xs = tuple(range(len(result.trajectory)))
        ys = tuple(step.cost / optimal for step in result.trajectory)
        series.append(Series(name, xs, ys))
    notes = ["x-axis: number of phantoms chosen so far; the first phantom "
             "gives the largest decrease (paper Fig. 12)"]
    return ExperimentResult(
        "fig12", "Cost while phantoms are chosen (M=40k, {A,B,C,D})",
        "# phantoms chosen", "relative cost (vs EPES)", series, notes)


def run(full_scale: bool = False, seed: int = 0) -> list[ExperimentResult]:
    return [run_fig11(full_scale=full_scale, seed=seed),
            run_fig12(full_scale=full_scale, seed=seed)]
