"""Shared scaffolding for the paper-reproduction experiments.

Every experiment module exposes ``run(...) -> ExperimentResult``; results
hold named series (the lines of a figure / rows of a table) and render as
aligned text so ``repro-experiments run <id>`` prints something directly
comparable to the paper's plots.

Workloads are cached per (kind, size, seed) so a benchmark session
generates each trace once. Default sizes are scaled down from the paper's
(1M synthetic / 860k real) for iteration speed; pass ``full_scale=True``
(or ``--full`` on the CLI) for paper-scale runs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import lru_cache

from repro.core.cost_model import CostParameters
from repro.gigascope.records import Dataset, StreamSchema
from repro.workloads import (
    NetflowTraceGenerator,
    make_group_universe,
    uniform_dataset,
)
from repro.workloads.universe import PAPER_CHAIN

__all__ = [
    "Series",
    "ExperimentResult",
    "paper_params",
    "MEMORY_GRID",
    "REDUCED_RECORDS",
    "FULL_SYNTHETIC_RECORDS",
    "FULL_TRACE_RECORDS",
    "synthetic_stream",
    "netflow_stream",
    "record_count",
]

#: The paper's memory grid: 20,000 .. 100,000 four-byte units (Sec. 6.1).
MEMORY_GRID = (20_000, 40_000, 60_000, 80_000, 100_000)

#: Paper-scale record counts (Sec. 6.1) and the reduced default.
FULL_SYNTHETIC_RECORDS = 1_000_000
FULL_TRACE_RECORDS = 860_000
REDUCED_RECORDS = 200_000


def paper_params() -> CostParameters:
    """c1 = 1, c2 = 50 — the paper's measured cost ratio (Sec. 6.1)."""
    return CostParameters(probe_cost=1.0, evict_cost=50.0)


def record_count(full_scale: bool, full: int) -> int:
    return full if full_scale else min(full, REDUCED_RECORDS)


@dataclass(frozen=True)
class Series:
    """One line of a figure: a name and aligned x/y vectors."""

    name: str
    x: tuple
    y: tuple

    def __post_init__(self) -> None:
        if len(self.x) != len(self.y):
            raise ValueError(f"series {self.name!r}: x/y length mismatch")


@dataclass
class ExperimentResult:
    """A rendered-to-text reproduction of one paper table or figure."""

    experiment_id: str
    title: str
    x_label: str
    y_label: str
    series: list[Series]
    notes: list[str] = field(default_factory=list)

    def series_by_name(self, name: str) -> Series:
        for s in self.series:
            if s.name == name:
                return s
        raise KeyError(f"no series named {name!r} in {self.experiment_id}")

    def render(self) -> str:
        lines = [f"== {self.experiment_id}: {self.title} =="]
        xs: list = []
        for s in self.series:
            for x in s.x:
                if x not in xs:
                    xs.append(x)
        headers = [self.x_label] + [s.name for s in self.series]
        maps = [dict(zip(s.x, s.y)) for s in self.series]
        rows = []
        for x in xs:
            row = [_fmt(x)]
            for mapping in maps:
                row.append(_fmt(mapping.get(x)))
            rows.append(row)
        widths = [max(len(h), *(len(r[i]) for r in rows)) if rows else len(h)
                  for i, h in enumerate(headers)]
        lines.append("  ".join(h.rjust(w) for h, w in zip(headers, widths)))
        lines.append("  ".join("-" * w for w in widths))
        for row in rows:
            lines.append("  ".join(v.rjust(w) for v, w in zip(row, widths)))
        for note in self.notes:
            lines.append(f"note: {note}")
        return "\n".join(lines)


def _fmt(value) -> str:
    if value is None:
        return "-"
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000:
            return f"{value:.0f}"
        if abs(value) >= 10:
            return f"{value:.2f}"
        return f"{value:.4f}"
    return str(value)


@lru_cache(maxsize=8)
def _paper_universe(seed: int = 0):
    schema = StreamSchema(("A", "B", "C", "D"))
    return make_group_universe(schema, PAPER_CHAIN, seed=seed)


@lru_cache(maxsize=8)
def synthetic_stream(n_records: int, seed: int = 0) -> Dataset:
    """The paper's uniform 4-d synthetic dataset at a given size."""
    return uniform_dataset(_paper_universe(seed), n_records,
                           duration=62.0, seed=seed + 1)


@lru_cache(maxsize=8)
def netflow_stream(n_records: int, seed: int = 0,
                   mean_flow_length: float | None = None) -> Dataset:
    """The clustered real-data substitute at a given size.

    Flow length scales with the record count so that the number of flows
    (and hence realized groups) stays paper-like at reduced sizes.
    """
    if mean_flow_length is None:
        mean_flow_length = max(
            300.0 * n_records / FULL_TRACE_RECORDS, 20.0)
    generator = NetflowTraceGenerator(_paper_universe(seed),
                                      mean_flow_length=mean_flow_length)
    return generator.generate(n_records, duration=62.0, seed=seed + 1)
