"""Command-line interface for the paper-reproduction experiments.

Usage::

    repro-experiments list
    repro-experiments run fig13 [--full]
    repro-experiments run all [--full]
"""

from __future__ import annotations

import argparse
import sys
import time

from repro.experiments.registry import experiment_ids, run_experiment

__all__ = ["main"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-experiments",
        description="Reproduce the tables and figures of 'Multiple "
                    "Aggregations Over Data Streams' (SIGMOD 2005).")
    sub = parser.add_subparsers(dest="command", required=True)
    sub.add_parser("list", help="list experiment ids")
    run_p = sub.add_parser("run", help="run one experiment (or 'all')")
    run_p.add_argument("experiment", help="experiment id, e.g. fig13, or 'all'")
    run_p.add_argument("--full", action="store_true",
                       help="paper-scale datasets (1M/860k records)")
    run_p.add_argument("--plot", action="store_true",
                       help="also draw an ASCII chart of the series")
    run_p.add_argument("--log-y", action="store_true",
                       help="log-scale y axis for --plot")
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    if args.command == "list":
        for experiment_id in experiment_ids():
            print(experiment_id)
        return 0
    ids = experiment_ids() if args.experiment == "all" else [args.experiment]
    for experiment_id in ids:
        start = time.perf_counter()
        try:
            result = run_experiment(experiment_id, full_scale=args.full)
        except KeyError as exc:
            print(exc, file=sys.stderr)
            return 2
        if getattr(args, "plot", False):
            from repro.experiments.plotting import render_with_chart
            print(render_with_chart(result, log_y=args.log_y))
        else:
            print(result.render())
        print(f"[{experiment_id} finished in "
              f"{time.perf_counter() - start:.1f}s]")
        print()
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
