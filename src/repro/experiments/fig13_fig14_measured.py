"""Figures 13 and 14 — measured (simulated) costs of planned configurations.

This is the paper's validation of the whole stack: plans produced by GCSL,
GS (best ``phi``), EPES and the no-phantom baseline are *executed* on the
stream through real hash tables, and the measured per-record intra-epoch
costs are compared (normalized by the measured cost of the EPES plan).

* **Figure 13** — uniform synthetic data, queries {A, B, C, D}:
  (a) GCSL vs GS; (b) GCSL vs no-phantom (phantoms win by over an order of
  magnitude).
* **Figure 14** — clustered (real-like) data, queries {AB, BC, BD, CD},
  flow length derived temporally: GCSL improvement up to ~100x over
  no-phantom.
"""

from __future__ import annotations

from repro.core.optimizer import plan
from repro.core.queries import QuerySet
from repro.core.feeding_graph import FeedingGraph
from repro.experiments.common import (
    ExperimentResult,
    FULL_SYNTHETIC_RECORDS,
    FULL_TRACE_RECORDS,
    MEMORY_GRID,
    Series,
    netflow_stream,
    paper_params,
    record_count,
    synthetic_stream,
)
from repro.gigascope.engine import simulate
from repro.workloads.datasets import measure_statistics

__all__ = ["run_fig13", "run_fig14", "run", "measured_per_record_cost"]

GS_PHIS = (0.6, 0.8, 1.0, 1.2)


def measured_per_record_cost(dataset, the_plan, params) -> float:
    """Execute a plan on a dataset (single epoch) and measure Eq. 7's cost."""
    buckets = {rel: int(b) for rel, b in the_plan.allocation.buckets.items()}
    result = simulate(dataset, the_plan.configuration, buckets,
                      epoch_seconds=dataset.duration + 1.0)
    return result.per_record_cost(params)


def _measured_comparison(experiment_id, title, dataset, queries, stats,
                         memories, phis, clustered):
    params = paper_params()
    gcsl_rel, gs_rel, none_rel = [], [], []
    for memory in memories:
        plans = {
            "epes": plan(queries, stats, memory, params, algorithm="epes",
                         clustered=clustered),
            "gcsl": plan(queries, stats, memory, params, algorithm="gcsl",
                         clustered=clustered),
            "none": plan(queries, stats, memory, params, algorithm="none",
                         clustered=clustered),
        }
        measured = {name: measured_per_record_cost(dataset, p, params)
                    for name, p in plans.items()}
        gs_costs = [
            measured_per_record_cost(
                dataset,
                plan(queries, stats, memory, params, algorithm="gs",
                     phi=phi, clustered=clustered),
                params)
            for phi in phis
        ]
        base = measured["epes"]
        gcsl_rel.append(measured["gcsl"] / base)
        gs_rel.append(min(gs_costs) / base)
        none_rel.append(measured["none"] / base)
    series = [
        Series("GCSL", memories, tuple(gcsl_rel)),
        Series("GS (best phi)", memories, tuple(gs_rel)),
        Series("no phantom", memories, tuple(none_rel)),
    ]
    improvement = max(n / g for n, g in zip(none_rel, gcsl_rel))
    notes = [
        "costs measured by streaming the data through the planned hash "
        "tables, normalized by the measured cost of the EPES plan",
        f"max GCSL improvement over no-phantom: {improvement:.1f}x",
    ]
    return ExperimentResult(experiment_id, title, "M (units)",
                            "relative measured cost", series, notes)


def run_fig13(full_scale: bool = False, seed: int = 0,
              memories: tuple[int, ...] = MEMORY_GRID,
              phis: tuple[float, ...] = GS_PHIS) -> ExperimentResult:
    n = record_count(full_scale, FULL_SYNTHETIC_RECORDS)
    dataset = synthetic_stream(n, seed=seed)
    queries = QuerySet.counts(["A", "B", "C", "D"])
    stats = measure_statistics(dataset, FeedingGraph(queries).nodes)
    return _measured_comparison(
        "fig13", "Measured costs on the synthetic dataset ({A,B,C,D})",
        dataset, queries, stats, memories, phis, clustered=False)


def run_fig14(full_scale: bool = False, seed: int = 0,
              memories: tuple[int, ...] = MEMORY_GRID,
              phis: tuple[float, ...] = GS_PHIS) -> ExperimentResult:
    n = record_count(full_scale, FULL_TRACE_RECORDS)
    dataset = netflow_stream(n, seed=seed)
    queries = QuerySet.counts(["AB", "BC", "BD", "CD"])
    # "Flow length is derived temporally" (paper Sec. 6.3.3).
    stats = measure_statistics(dataset, FeedingGraph(queries).nodes,
                               flow_timeout=1.0)
    return _measured_comparison(
        "fig14", "Measured costs on the real-like dataset ({AB,BC,BD,CD})",
        dataset, queries, stats, memories, phis, clustered=True)


def run(full_scale: bool = False, seed: int = 0) -> list[ExperimentResult]:
    return [run_fig13(full_scale=full_scale, seed=seed),
            run_fig14(full_scale=full_scale, seed=seed)]
