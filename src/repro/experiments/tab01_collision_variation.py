"""Table 1 — the collision rate depends (almost) only on ``g/b``.

For each fixed ratio ``g/b`` in {0.25, ..., 32}, the precise model is
evaluated across ``b`` in [300, 3000]; the maximum relative variation is
reported. The paper finds all variations below 1.5%, licensing the
precomputed ``x(g/b)`` lookup.
"""

from __future__ import annotations

from repro.core.collision import precise_rate
from repro.experiments.common import ExperimentResult, Series

__all__ = ["run", "PAPER_VARIATIONS"]

RATIOS = (0.25, 0.5, 1, 2, 4, 8, 16, 32)

#: The paper's reported variations (%), for side-by-side comparison.
PAPER_VARIATIONS = (1.4, 0.43, 0.15, 0.03, 0.004, 0.0, 0.0, 0.0)


def run(b_min: int = 300, b_max: int = 3000,
        b_step: int = 300) -> ExperimentResult:
    variations = []
    for ratio in RATIOS:
        rates = [precise_rate(ratio * b, b)
                 for b in range(b_min, b_max + 1, b_step)]
        top = max(rates)
        variations.append(100.0 * (top - min(rates)) / top if top else 0.0)
    series = [
        Series("variation (%)", RATIOS, tuple(variations)),
        Series("paper variation (%)", RATIOS, PAPER_VARIATIONS),
    ]
    notes = [f"max variation {max(variations):.3f}% "
             "(paper: all below 1.5%)"]
    return ExperimentResult(
        "tab1", "Variation of the collision rate at fixed g/b",
        "g/b", "max relative variation (%)", series, notes)
