"""Terminal (ASCII) charts for experiment results.

The paper's artifacts are mostly *figures*; the tables that
:meth:`ExperimentResult.render` prints carry the numbers, and this module
adds the shape: a multi-series scatter chart drawn with per-series markers,
axes, tick labels and a legend — enough to eyeball a knee, a crossover or
an order-of-magnitude gap straight from ``repro-experiments run <id>
--plot``.
"""

from __future__ import annotations

import math

from repro.experiments.common import ExperimentResult, Series

__all__ = ["ascii_chart", "render_with_chart"]

_MARKERS = "ox+*#@%&"


def _ticks(lo: float, hi: float, count: int) -> list[float]:
    if hi <= lo:
        return [lo]
    return [lo + (hi - lo) * i / (count - 1) for i in range(count)]


def _fmt_tick(value: float) -> str:
    if value == 0:
        return "0"
    if abs(value) >= 10_000 or abs(value) < 0.01:
        return f"{value:.1e}"
    if abs(value) >= 100:
        return f"{value:.0f}"
    return f"{value:.2f}"


def ascii_chart(series: list[Series], width: int = 64, height: int = 16,
                x_label: str = "x", y_label: str = "y",
                log_y: bool = False) -> str:
    """Render series as a character grid with axes and a legend.

    ``log_y`` plots ``log10(y)`` (points with ``y <= 0`` are dropped),
    which is how the paper draws Figures 13(b)/14(b).
    """
    points: list[tuple[float, float, str]] = []
    for index, s in enumerate(series):
        marker = _MARKERS[index % len(_MARKERS)]
        for x, y in zip(s.x, s.y):
            if y is None:
                continue
            y = float(y)
            if log_y:
                if y <= 0:
                    continue
                y = math.log10(y)
            points.append((float(x), y, marker))
    if not points:
        return "(no data to plot)"
    xs = [p[0] for p in points]
    ys = [p[1] for p in points]
    x_lo, x_hi = min(xs), max(xs)
    y_lo, y_hi = min(ys), max(ys)
    if x_hi == x_lo:
        x_hi = x_lo + 1.0
    if y_hi == y_lo:
        y_hi = y_lo + 1.0

    grid = [[" "] * width for _ in range(height)]
    for x, y, marker in points:
        col = int(round((x - x_lo) / (x_hi - x_lo) * (width - 1)))
        row = int(round((y - y_lo) / (y_hi - y_lo) * (height - 1)))
        grid[height - 1 - row][col] = marker

    y_ticks = _ticks(y_lo, y_hi, 5)
    label_width = max(len(_fmt_tick(10 ** t if log_y else t))
                      for t in y_ticks)
    lines: list[str] = []
    tick_rows = {height - 1 - int(round((t - y_lo) / (y_hi - y_lo)
                                        * (height - 1))): t
                 for t in y_ticks}
    for row_index, row in enumerate(grid):
        if row_index in tick_rows:
            t = tick_rows[row_index]
            shown = 10 ** t if log_y else t
            label = _fmt_tick(shown).rjust(label_width)
        else:
            label = " " * label_width
        lines.append(f"{label} |{''.join(row)}")
    lines.append(" " * label_width + " +" + "-" * width)
    x_ticks = _ticks(x_lo, x_hi, 4)
    tick_text = "   ".join(_fmt_tick(t) for t in x_ticks)
    lines.append(" " * (label_width + 2) + tick_text)
    lines.append(" " * (label_width + 2)
                 + f"{x_label}  (y: {y_label}"
                 + (", log scale)" if log_y else ")"))
    legend = "   ".join(f"{_MARKERS[i % len(_MARKERS)]} {s.name}"
                        for i, s in enumerate(series))
    lines.append(" " * (label_width + 2) + legend)
    return "\n".join(lines)


def render_with_chart(result: ExperimentResult, log_y: bool = False,
                      **chart_kwargs) -> str:
    """The tabular rendering followed by the chart."""
    chart = ascii_chart(result.series, x_label=result.x_label,
                        y_label=result.y_label, log_y=log_y,
                        **chart_kwargs)
    return f"{result.render()}\n\n{chart}"
